//! The daemon: listener, connection threads, admission, drain.
//!
//! # Threading model
//!
//! One thread accepts connections; each connection gets a reader thread
//! that parses request lines and answers the cheap operations (`ping`,
//! `stats`, `shutdown`) inline. Solver-backed operations are submitted to
//! the shared [`ServicePool`] — the same owner-front/sibling-back
//! work-stealing discipline as the campaign engine, but persistent across
//! requests and bounded: once `queue` jobs are waiting the service
//! answers `overloaded` instead of queueing further (admission control).
//! Responses are written whole-line under a per-connection writer lock,
//! so concurrent jobs of one connection interleave only at line
//! granularity.
//!
//! # Warm sessions
//!
//! Each solver job checks a [`SessionCache`] for a live session under its
//! `(case, topology, certify)` key, builds one on a miss, and returns it
//! afterwards. Sessions own their case data (`Arc<TestSystem>`) and their
//! solver core is `Send`, so a session warmed on one worker freely moves
//! to whichever worker takes the next request for its key.
//!
//! # Deadlines and drain
//!
//! Every solver job gets a cancel token registered in an in-flight table;
//! a request `timeout_ms` additionally arms a wall-clock deadline. Both
//! feed the same [`Budget`] polled in every solver phase. Graceful drain
//! (`shutdown`) stops admitting, waits up to the drain deadline for
//! in-flight work, cancels whatever remains via the tokens, waits one
//! more drain window for the cancellations to surface as
//! `unknown(cancelled)` responses, then stops the listener — in-flight
//! clients always receive a final line.

use crate::cache::{SessionCache, SessionKey};
use crate::metrics::{MetricOp, MetricsRegistry, MetricsSnapshot, ServiceGauges};
use crate::net;
use crate::protocol::{self, ErrorKind, MetricsFormat, Op, Query, Request};
use sta_campaign::report::witness_json;
use sta_campaign::{CampaignSpec, RunOptions, ServicePool, SubmitError};
use sta_core::attack::{AttackModel, AttackOutcome, AttackVerifier, VerifySession};
use sta_core::scenario;
use sta_core::synthesis::{SynthesisConfig, SynthesisOutcome, Synthesizer};
use sta_grid::{caseformat, ieee14, synthetic, TestSystem};
use sta_smt::json::escape_into;
use sta_smt::{Budget, Clock, Interrupt, Phase, SharedSink, TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Locks a mutex, shrugging off poisoning: every guarded structure here
/// (session cache, case table, in-flight table, connection writer) is
/// update-complete at each lock release, so a panicking job cannot leave
/// half-written state behind.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Service tuning, fully explicit so `Debug`-printing a server states its
/// whole contract.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to listen on: a unix socket path (contains `/`) or a TCP
    /// `host:port` (`:0` picks a free port, see [`Server::local_addr`]).
    pub listen: String,
    /// Solver worker threads.
    pub jobs: usize,
    /// Warm-session cache capacity (distinct `(case, topology, certify)`
    /// keys held live).
    pub max_sessions: usize,
    /// Admission bound: queued-but-unstarted jobs beyond which requests
    /// are rejected `overloaded`.
    pub queue: usize,
    /// Default drain deadline for `shutdown`, milliseconds.
    pub drain_ms: u64,
    /// Whether latency/queue-wait histograms record (counters always
    /// do). On by default; the bench suite's overhead pair boots a
    /// server with this off to price the recording itself.
    pub telemetry: bool,
}

impl ServeConfig {
    /// A config with the CLI defaults: 4 workers, 8 sessions, a 32-deep
    /// admission queue, and a 2 s drain window.
    pub fn new(listen: impl Into<String>) -> Self {
        ServeConfig {
            listen: listen.into(),
            jobs: 4,
            max_sessions: 8,
            queue: 32,
            drain_ms: 2000,
            telemetry: true,
        }
    }
}

/// Everything shared between the accept loop, connection threads, and
/// pool workers.
struct ServerState {
    config: ServeConfig,
    /// The resolved listen address (used by drain to unblock `accept`).
    addr: String,
    pool: ServicePool,
    sessions: Mutex<SessionCache>,
    /// Loaded cases by request spelling, so repeated requests share one
    /// [`TestSystem`] allocation (and file-backed cases one read).
    cases: Mutex<BTreeMap<String, Arc<TestSystem>>>,
    /// Cancel tokens of submitted-but-unfinished solver jobs, by ticket.
    inflight: Mutex<BTreeMap<u64, Arc<AtomicBool>>>,
    next_ticket: AtomicU64,
    /// Set by `shutdown`: reject new solver work with `draining`.
    draining: AtomicBool,
    /// Live `watch` subscription loops. Drain waits (bounded) for this
    /// to reach zero so every subscriber gets its final snapshot before
    /// the process exits.
    watchers: AtomicU64,
    /// Set after drain completes: the accept loop exits on its next wake.
    stop: AtomicBool,
    requests: AtomicU64,
    rejected: AtomicU64,
    clock: Clock,
    /// The telemetry plane: per-op counters and latency histograms.
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("addr", &self.addr)
            .field("draining", &self.draining.load(Ordering::SeqCst))
            .field("requests", &self.requests.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

/// A bound, not-yet-running service. [`Server::run`] blocks the calling
/// thread until a `shutdown` request drains it.
#[derive(Debug)]
pub struct Server {
    state: Arc<ServerState>,
    listener: net::Listener,
}

/// Loads a case by builtin name or case-file path (the CLI grammar).
fn load_case(spec: &str) -> Result<TestSystem, String> {
    match spec {
        "ieee14" => return Ok(ieee14::system()),
        "ieee14-unsecured" => return Ok(ieee14::system_unsecured()),
        "ieee30" => return Ok(synthetic::ieee_case(30)),
        "ieee57" => return Ok(synthetic::ieee_case(57)),
        "ieee118" => return Ok(synthetic::ieee_case(118)),
        "ieee300" => return Ok(synthetic::ieee_case(300)),
        "ieee1354" => return Ok(synthetic::ieee_case(1354)),
        "ieee2000" => return Ok(synthetic::ieee_case(2000)),
        _ => {}
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| format!("cannot read case file {spec:?}: {e}"))?;
    caseformat::parse(&text).map_err(|e| e.to_string())
}

impl ServerState {
    /// The shared [`TestSystem`] for `spec`, loading and caching on first
    /// use. Loading happens outside the table lock (file-backed cases can
    /// be slow); a racing duplicate load keeps the first arrival.
    fn case(&self, spec: &str) -> Result<Arc<TestSystem>, String> {
        if let Some(sys) = lock(&self.cases).get(spec) {
            return Ok(Arc::clone(sys));
        }
        let loaded = Arc::new(load_case(spec)?);
        let mut cases = lock(&self.cases);
        Ok(Arc::clone(cases.entry(spec.to_string()).or_insert(loaded)))
    }
}

/// Writes one line (plus newline) under the connection's writer lock and
/// flushes it, so a line is never interleaved with another job's output.
/// Write errors mean the client is gone; the job's work is already done
/// either way, so they are ignored.
fn write_line(writer: &Mutex<net::Stream>, line: &str) {
    let mut w = lock(writer);
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

/// Like [`write_line`] but reports whether the write reached the socket —
/// the `watch` loop's only way to notice a departed client.
fn try_write_line(writer: &Mutex<net::Stream>, line: &str) -> bool {
    let mut w = lock(writer);
    w.write_all(line.as_bytes())
        .and_then(|_| w.write_all(b"\n"))
        .and_then(|_| w.flush())
        .is_ok()
}

/// Which solver-backed operation a submitted job runs.
#[derive(Debug, Clone, Copy)]
enum QueryKind {
    Verify,
    Synthesize,
    Campaign,
}

impl QueryKind {
    /// The registry key of this operation.
    fn metric_op(self) -> MetricOp {
        match self {
            QueryKind::Verify => MetricOp::Verify,
            QueryKind::Synthesize => MetricOp::Synthesize,
            QueryKind::Campaign => MetricOp::Campaign,
        }
    }
}

/// Streams campaign trace events straight onto the requesting connection
/// as request-tagged `trace` lines, as jobs finish — the live half of the
/// campaign-progress contract (the final response still arrives last,
/// because the campaign engine emits every event before returning).
struct ForwardSink {
    id: String,
    writer: Arc<Mutex<net::Stream>>,
}

impl TraceSink for ForwardSink {
    fn emit(&mut self, event: &TraceEvent) {
        write_line(&self.writer, &protocol::trace_line(&self.id, event));
    }
}

impl Server {
    /// Binds the listener and builds the shared state. The service is not
    /// accepting until [`Server::run`].
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        let listener = net::Listener::bind(&config.listen)
            .map_err(|e| format!("cannot listen on {:?}: {e}", config.listen))?;
        let addr = listener.addr().to_string();
        let clock = Clock::monotonic();
        let metrics = MetricsRegistry::new(config.telemetry, clock.now());
        let state = Arc::new(ServerState {
            pool: ServicePool::new(config.jobs.max(1), config.queue.max(1)),
            sessions: Mutex::new(SessionCache::new(config.max_sessions)),
            cases: Mutex::new(BTreeMap::new()),
            inflight: Mutex::new(BTreeMap::new()),
            next_ticket: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            watchers: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            clock,
            metrics,
            addr,
            config,
        });
        Ok(Server { state, listener })
    }

    /// The resolved listen address: the actual port for TCP `:0` binds,
    /// the socket path for unix.
    pub fn local_addr(&self) -> &str {
        self.listener.addr()
    }

    /// Serves until a `shutdown` request completes its drain. Each
    /// connection runs on its own reader thread; this thread only
    /// accepts.
    pub fn run(self) -> Result<(), String> {
        let Server { state, listener } = self;
        loop {
            match listener.accept() {
                Ok(stream) => {
                    if state.stop.load(Ordering::SeqCst) {
                        // Drain already completed; this is either the
                        // self-connection that unblocked accept or a
                        // late client. Dropping the stream closes it.
                        break;
                    }
                    let state = Arc::clone(&state);
                    std::thread::spawn(move || handle_connection(&state, stream));
                }
                Err(e) => {
                    if state.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(format!("accept failed: {e}"));
                }
            }
        }
        listener.cleanup();
        Ok(())
    }
}

/// Reads request lines off one connection until EOF. Malformed lines get
/// an `error` response and the connection stays open — a client typo
/// never costs the session.
fn handle_connection(state: &Arc<ServerState>, stream: net::Stream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        state.requests.fetch_add(1, Ordering::SeqCst);
        match protocol::parse_request(trimmed) {
            Err(e) => {
                state.metrics.record_protocol_error(e.kind);
                write_line(&writer, &protocol::error_line(e.id.as_deref(), e.kind, &e.message));
            }
            Ok(req) => dispatch(state, &writer, req),
        }
    }
}

fn dispatch(state: &Arc<ServerState>, writer: &Arc<Mutex<net::Stream>>, req: Request) {
    let started = state.clock.now();
    match req.op {
        Op::Ping => {
            state.metrics.record_request(MetricOp::Ping);
            let mut out = protocol::response_head(&req.id, "ping");
            out.push_str(",\"ok\":true}");
            write_line(writer, &out);
            inline_latency(state, MetricOp::Ping, started);
        }
        Op::Stats => {
            state.metrics.record_request(MetricOp::Stats);
            write_line(writer, &stats_line(state, &req.id));
            inline_latency(state, MetricOp::Stats, started);
        }
        Op::Metrics { format } => {
            state.metrics.record_request(MetricOp::Metrics);
            write_line(writer, &metrics_line(state, &req.id, format));
            inline_latency(state, MetricOp::Metrics, started);
        }
        Op::Watch { interval_ms } => {
            state.metrics.record_request(MetricOp::Watch);
            handle_watch(state, writer, &req.id, interval_ms);
            inline_latency(state, MetricOp::Watch, started);
        }
        Op::Shutdown { drain_ms } => {
            state.metrics.record_request(MetricOp::Shutdown);
            handle_shutdown(state, writer, &req.id, drain_ms);
            inline_latency(state, MetricOp::Shutdown, started);
        }
        Op::Verify(q) => submit(state, writer, req.id, QueryKind::Verify, q),
        Op::Synthesize(q) => submit(state, writer, req.id, QueryKind::Synthesize, q),
        Op::Campaign(q) => submit(state, writer, req.id, QueryKind::Campaign, q),
    }
}

/// Records the latency of an op handled inline on the connection thread.
/// (For a `watch` this is the whole subscription lifetime.)
fn inline_latency(state: &ServerState, op: MetricOp, started: Duration) {
    state
        .metrics
        .record_latency(op, state.clock.now().saturating_sub(started));
}

/// Freezes the telemetry plane together with the server's own gauges
/// (pool occupancy, session-cache temperature, admission totals).
fn snapshot(state: &ServerState) -> MetricsSnapshot {
    let (live, capacity, hits, misses, evictions) = {
        let sessions = lock(&state.sessions);
        (
            sessions.live() as u64,
            sessions.capacity() as u64,
            sessions.hits(),
            sessions.misses(),
            sessions.evictions(),
        )
    };
    state.metrics.snapshot(
        state.clock.now(),
        ServiceGauges {
            workers: state.pool.workers() as u64,
            queue_depth: state.pool.pending() as u64,
            queue_capacity: state.config.queue.max(1) as u64,
            draining: state.draining.load(Ordering::SeqCst),
            requests: state.requests.load(Ordering::SeqCst),
            sessions_live: live,
            sessions_capacity: capacity,
            session_hits: hits,
            session_misses: misses,
            session_evictions: evictions,
        },
    )
}

/// The `stats` response: session-cache temperature, admission counters,
/// uptime and a per-op request/latency summary. Everything here is
/// scheduling-dependent, so stats lines are observational only — never
/// part of the determinism contract.
fn stats_line(state: &ServerState, id: &str) -> String {
    let snap = snapshot(state);
    let s = &snap.service;
    let mut out = protocol::response_head(id, "stats");
    let _ = write!(
        out,
        ",\"sessions\":{{\"live\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\
         \"evictions\":{}}}",
        s.sessions_live, s.sessions_capacity, s.session_hits, s.session_misses,
        s.session_evictions,
    );
    let _ = write!(
        out,
        ",\"requests\":{},\"rejected\":{},\"pending\":{},\"workers\":{},\"draining\":{}",
        s.requests,
        state.rejected.load(Ordering::SeqCst),
        s.queue_depth,
        s.workers,
        s.draining,
    );
    let _ = write!(out, ",\"uptime_us\":{},\"busy\":{},\"ops\":{{", snap.uptime_us, snap.busy);
    for (i, op) in snap.ops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"requests\":{},\"errors\":{},\"p50_us\":{},\"p90_us\":{},\
             \"p99_us\":{}}}",
            op.op,
            op.requests,
            op.errors,
            op.latency.percentile(0.50),
            op.latency.percentile(0.90),
            op.latency.percentile(0.99),
        );
    }
    out.push_str("}}");
    out
}

/// The `metrics` response: the full snapshot in the requested exposition
/// format. Prometheus text rides inside the JSONL line as an escaped
/// `body` string (the client unwraps it back to raw text).
fn metrics_line(state: &ServerState, id: &str, format: MetricsFormat) -> String {
    let snap = snapshot(state);
    let mut out = protocol::response_head(id, "metrics");
    match format {
        MetricsFormat::Json => {
            out.push_str(",\"format\":\"json\",\"metrics\":");
            snap.to_json_into(&mut out);
        }
        MetricsFormat::Prometheus => {
            out.push_str(",\"format\":\"prometheus\",\"body\":");
            escape_into(&snap.to_prometheus(), &mut out);
        }
    }
    out.push('}');
    out
}

/// The `watch` subscription loop, run inline on the connection's reader
/// thread (a watch deliberately monopolizes its connection). Emits one
/// snapshot immediately, then one per interval, until the client
/// disconnects (a failed write) or the server drains — drain ends the
/// subscription honestly with a final `response` line carrying the last
/// snapshot. Watch connections are not in the in-flight table, so a
/// drain never waits on them.
fn handle_watch(
    state: &ServerState,
    writer: &Arc<Mutex<net::Stream>>,
    id: &str,
    interval_ms: u64,
) {
    state.watchers.fetch_add(1, Ordering::SeqCst);
    watch_loop(state, writer, id, interval_ms);
    state.watchers.fetch_sub(1, Ordering::SeqCst);
}

/// The body of [`handle_watch`], split out so the watcher gauge is
/// balanced on every exit path.
fn watch_loop(
    state: &ServerState,
    writer: &Arc<Mutex<net::Stream>>,
    id: &str,
    interval_ms: u64,
) {
    let interval = Duration::from_millis(interval_ms);
    let mut seq = 0u64;
    loop {
        let snap = snapshot(state);
        if state.draining.load(Ordering::SeqCst) {
            let mut out = protocol::response_head(id, "watch");
            let _ = write!(out, ",\"snapshots\":{seq},\"draining\":true,\"final_snapshot\":");
            snap.to_json_into(&mut out);
            out.push('}');
            write_line(writer, &out);
            return;
        }
        if !try_write_line(writer, &protocol::watch_line(id, seq, &snap.to_json())) {
            return;
        }
        seq += 1;
        // Sleep in short slices so a drain ends the subscription well
        // before a long interval elapses.
        let mut waited = Duration::ZERO;
        while waited < interval && !state.draining.load(Ordering::SeqCst) {
            let slice = Duration::from_millis(25).min(interval - waited);
            std::thread::sleep(slice);
            waited += slice;
        }
    }
}

/// Admission: refuse while draining, register a cancel token, hand the
/// job to the pool, and translate a full queue into an `overloaded`
/// error response.
fn submit(
    state: &Arc<ServerState>,
    writer: &Arc<Mutex<net::Stream>>,
    id: String,
    kind: QueryKind,
    q: Query,
) {
    let op = kind.metric_op();
    state.metrics.record_request(op);
    if state.draining.load(Ordering::SeqCst) {
        state.rejected.fetch_add(1, Ordering::SeqCst);
        state.metrics.record_rejected();
        state.metrics.record_error(op, ErrorKind::Draining);
        write_line(
            writer,
            &protocol::error_line(Some(&id), ErrorKind::Draining, "server is draining"),
        );
        return;
    }
    let token = Arc::new(AtomicBool::new(false));
    let ticket = state.next_ticket.fetch_add(1, Ordering::SeqCst);
    lock(&state.inflight).insert(ticket, Arc::clone(&token));
    let job_state = Arc::clone(state);
    let job_writer = Arc::clone(writer);
    let job_id = id.clone();
    let admitted = state.clock.now();
    let submitted = state.pool.submit(move |worker| {
        // Admission→pickup is the queue wait; everything from admission
        // to the written response is the op's end-to-end latency.
        job_state
            .metrics
            .record_queue_wait(op, job_state.clock.now().saturating_sub(admitted));
        job_state.metrics.job_begin();
        let lines = run_query(&job_state, &job_id, kind, &q, &token, worker, &job_writer);
        for line in &lines {
            write_line(&job_writer, line);
        }
        job_state.metrics.job_end();
        job_state
            .metrics
            .record_latency(op, job_state.clock.now().saturating_sub(admitted));
        lock(&job_state.inflight).remove(&ticket);
    });
    if let Err(err) = submitted {
        lock(&state.inflight).remove(&ticket);
        state.rejected.fetch_add(1, Ordering::SeqCst);
        state.metrics.record_rejected();
        let (kind, message) = match err {
            SubmitError::Overloaded => {
                (ErrorKind::Overloaded, "admission queue is full; retry later")
            }
            SubmitError::Closed => (ErrorKind::Draining, "server is draining"),
        };
        state.metrics.record_error(op, kind);
        write_line(writer, &protocol::error_line(Some(&id), kind, message));
    }
}

/// Graceful drain, run on the requesting connection's thread: stop
/// admissions, wait for in-flight work, cancel stragglers past the
/// deadline, respond, then wake the accept loop so it can exit.
fn handle_shutdown(
    state: &Arc<ServerState>,
    writer: &Arc<Mutex<net::Stream>>,
    id: &str,
    drain_ms: Option<u64>,
) {
    if state.draining.swap(true, Ordering::SeqCst) {
        write_line(
            writer,
            &protocol::error_line(Some(id), ErrorKind::Draining, "already draining"),
        );
        return;
    }
    let window = Duration::from_millis(drain_ms.unwrap_or(state.config.drain_ms));
    let deadline = state.clock.now() + window;
    let mut drained = wait_for_idle(state, deadline);
    if !drained {
        // Past the deadline: cut the stragglers loose. Their budgets
        // observe the token at the next poll site and the jobs still
        // flush an `unknown(cancelled)` response before unregistering.
        for token in lock(&state.inflight).values() {
            token.store(true, Ordering::SeqCst);
        }
        drained = wait_for_idle(state, deadline + window);
    }
    // Give live `watch` subscriptions a moment to observe the drain and
    // close honestly with their final snapshot. Bounded: a subscriber
    // blocked on a dead client write must not wedge the shutdown.
    let watch_deadline = state.clock.now() + Duration::from_millis(500);
    while state.watchers.load(Ordering::SeqCst) > 0 && state.clock.now() < watch_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    state.stop.store(true, Ordering::SeqCst);
    let mut out = protocol::response_head(id, "shutdown");
    out.push_str(",\"ok\":true,\"drained\":");
    out.push_str(if drained { "true" } else { "false" });
    out.push('}');
    write_line(writer, &out);
    // accept() is blocking; a throwaway self-connection wakes it so the
    // run loop can observe `stop` and exit.
    let _ = net::connect(&state.addr);
}

/// Polls the in-flight table until it empties or `deadline` passes.
fn wait_for_idle(state: &ServerState, deadline: Duration) -> bool {
    loop {
        if lock(&state.inflight).is_empty() {
            return true;
        }
        if state.clock.now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Records a bad-request failure of a solver-backed op and renders its
/// error line.
fn query_error(state: &ServerState, op: MetricOp, id: &str, message: &str) -> Vec<String> {
    state.metrics.record_error(op, ErrorKind::BadRequest);
    vec![protocol::error_line(Some(id), ErrorKind::BadRequest, message)]
}

/// Executes one solver-backed request on a pool worker, returning the
/// lines to write (trace lines first, the response last). Campaign
/// requests with `trace:true` additionally stream per-job events onto
/// `writer` live, before this function returns.
#[allow(clippy::too_many_arguments)]
fn run_query(
    state: &ServerState,
    id: &str,
    kind: QueryKind,
    q: &Query,
    token: &Arc<AtomicBool>,
    worker: usize,
    writer: &Arc<Mutex<net::Stream>>,
) -> Vec<String> {
    let started = state.clock.now();
    let system = match state.case(&q.case) {
        Ok(sys) => sys,
        Err(message) => return query_error(state, kind.metric_op(), id, &message),
    };
    let model = if q.scenario.is_empty() {
        AttackModel::new(system.grid.num_buses())
    } else {
        match scenario::parse(&q.scenario, system.grid.num_buses(), system.grid.num_lines()) {
            Ok(m) => m,
            Err(e) => return query_error(state, kind.metric_op(), id, &e.to_string()),
        }
    };
    match kind {
        QueryKind::Verify => run_verify(state, id, q, &system, model, token, worker, started),
        QueryKind::Synthesize => run_synthesize(state, id, q, &system, model, worker, started),
        QueryKind::Campaign => run_campaign(state, id, q, &system, worker, started, writer),
    }
}

/// Trace lines of one solver phase breakdown, mirroring the one-shot CLI:
/// the scheduling-dependent base-cache counters ride on the encode phase.
fn phase_trace_lines(id: &str, stats: &sta_smt::SolverStats, lines: &mut Vec<String>) {
    let metrics = stats.phase_metrics();
    let timings = stats.phase_timings();
    for (phase, mut counters) in metrics.grouped() {
        if phase == Phase::Encode {
            counters.push(("cache_hits", timings.cache_hits));
            counters.push(("cache_misses", timings.cache_misses));
        }
        let wall_us = timings.wall_of(phase).map(|d| d.as_micros() as u64);
        lines.push(protocol::trace_line(
            id,
            &TraceEvent::Phase { job: 0, phase, counters, wall_us },
        ));
    }
}

/// Appends the `timing` object — always the last key of a response, and
/// only under `"timing":true`, so stripping it is the whole determinism
/// story.
#[allow(clippy::too_many_arguments)]
fn timing_tail(
    out: &mut String,
    wall: Duration,
    encode: Duration,
    search: Duration,
    session: Option<bool>,
    worker: usize,
) {
    let _ = write!(
        out,
        ",\"timing\":{{\"wall_us\":{},\"encode_us\":{},\"search_us\":{}",
        wall.as_micros(),
        encode.as_micros(),
        search.as_micros(),
    );
    if let Some(warm) = session {
        let _ = write!(out, ",\"session\":\"{}\"", if warm { "hit" } else { "miss" });
    }
    let _ = write!(out, ",\"worker\":{worker}}}");
}

#[allow(clippy::too_many_arguments)]
fn run_verify(
    state: &ServerState,
    id: &str,
    q: &Query,
    system: &Arc<TestSystem>,
    model: AttackModel,
    token: &Arc<AtomicBool>,
    worker: usize,
    started: Duration,
) -> Vec<String> {
    // The request deadline overrides the scenario's own `timeout-ms`,
    // like `--timeout-ms` in the CLI; the cancel token rides along either
    // way so drain can always reach this job.
    let budget = match q.timeout_ms.or(model.timeout_ms) {
        Some(ms) => Budget::with_timeout(Duration::from_millis(ms)),
        None => Budget::unlimited(),
    }
    .with_cancel_token(Arc::clone(token));
    let key: SessionKey = (q.case.clone(), model.allow_topology_attack, q.certify);
    let (mut session, warm) = match lock(&state.sessions).take(&key) {
        Some(session) => (session, true),
        None => (
            VerifySession::with_verifier(
                AttackVerifier::shared(Arc::clone(system)).with_certify(q.certify),
                model.allow_topology_attack,
            ),
            false,
        ),
    };
    let report = session.verify_with_budget(&model, &budget);
    // Sessions survive every outcome — a timed-out check leaves the base
    // encoding intact (scenario assertions are popped), so the next
    // request still gets a warm start.
    lock(&state.sessions).put(key, session);
    let wall = state.clock.now().saturating_sub(started);
    let mut lines = Vec::new();
    if q.trace {
        phase_trace_lines(id, &report.stats, &mut lines);
    }
    let mut out = protocol::response_head(id, "verify");
    match &report.outcome {
        AttackOutcome::Feasible(v) => {
            out.push_str(",\"verdict\":\"sat\",\"witness\":");
            witness_json(v, &mut out);
        }
        AttackOutcome::Infeasible => out.push_str(",\"verdict\":\"unsat\""),
        AttackOutcome::Unknown(why) => {
            if matches!(why, Interrupt::Cancelled) {
                state.metrics.record_cancelled();
            }
            let _ = write!(out, ",\"verdict\":\"unknown({why})\"");
        }
    }
    if q.timing {
        let pw = report.stats.phase_timings();
        timing_tail(&mut out, wall, pw.encode, pw.search, Some(warm), worker);
    }
    out.push('}');
    lines.push(out);
    lines
}

#[allow(clippy::too_many_arguments)]
fn run_synthesize(
    state: &ServerState,
    id: &str,
    q: &Query,
    system: &Arc<TestSystem>,
    model: AttackModel,
    worker: usize,
    started: Duration,
) -> Vec<String> {
    let Some(budget) = q.budget else {
        return query_error(
            state,
            MetricOp::Synthesize,
            id,
            "synthesize needs a numeric \"budget\"",
        );
    };
    let mut attacker = model;
    if attacker.timeout_ms.is_none() {
        // The per-request deadline bounds each CEGIS check (the loop
        // re-verifies many times; an expired check ends the job as
        // `inconclusive`), mirroring the campaign engine.
        attacker.timeout_ms = q.timeout_ms;
    }
    let synth = Synthesizer::new(system).with_certify(q.certify);
    let config = SynthesisConfig::with_budget(budget).with_incremental(q.incremental);
    let (outcome, obs) = synth.synthesize_with_metrics(&attacker, &config);
    let wall = state.clock.now().saturating_sub(started);
    let mut out = protocol::response_head(id, "synthesize");
    match outcome {
        SynthesisOutcome::Architecture(arch) => {
            out.push_str(",\"verdict\":\"architecture\",\"architecture\":[");
            for (i, b) in arch.secured_buses.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", b.0 + 1);
            }
            let _ = write!(out, "],\"iterations\":{}", arch.iterations);
        }
        SynthesisOutcome::NoSolution { iterations } => {
            let _ = write!(out, ",\"verdict\":\"no-solution\",\"iterations\":{iterations}");
        }
        SynthesisOutcome::Inconclusive { iterations } => {
            let _ = write!(out, ",\"verdict\":\"inconclusive\",\"iterations\":{iterations}");
        }
    }
    if q.timing {
        timing_tail(&mut out, wall, obs.timings.encode, obs.timings.search, None, worker);
    }
    out.push('}');
    vec![out]
}

#[allow(clippy::too_many_arguments)]
fn run_campaign(
    state: &ServerState,
    id: &str,
    q: &Query,
    system: &Arc<TestSystem>,
    worker: usize,
    started: Duration,
    writer: &Arc<Mutex<net::Stream>>,
) -> Vec<String> {
    let mut spec = CampaignSpec::standard_sweep(&q.case, (**system).clone())
        .with_certify(q.certify)
        .with_incremental(q.incremental);
    if let Some(ms) = q.timeout_ms {
        spec = spec.with_timeout_ms(ms);
    }
    let report = if q.trace {
        // Stream the engine's per-job events straight onto the connection
        // as they happen (plus periodic heartbeats), instead of holding
        // everything until the end. The report — and therefore the final
        // response line — is byte-identical to the untraced path.
        let sink = SharedSink::new(Box::new(ForwardSink {
            id: id.to_string(),
            writer: Arc::clone(writer),
        }));
        let mut options = RunOptions::with_workers(q.workers.max(1));
        options.clock = state.clock.clone();
        options.heartbeat = Some(Duration::from_millis(500));
        sta_campaign::run_with(&spec, &options, Some(&sink))
    } else {
        sta_campaign::run(&spec, q.workers.max(1))
    };
    let wall = state.clock.now().saturating_sub(started);
    let mut out = protocol::response_head(id, "campaign");
    let _ = write!(out, ",\"jobs\":{},\"summary\":{{", report.results.len());
    for (i, (token, n)) in report.summary().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{token}\":{n}");
    }
    out.push_str("},\"any_unknown\":");
    out.push_str(if report.any_unknown() { "true" } else { "false" });
    if q.timing {
        timing_tail(&mut out, wall, Duration::ZERO, Duration::ZERO, None, worker);
    }
    out.push('}');
    vec![out]
}

/// A running server on a background thread, for in-process harnesses
/// (the serve bench and the integration tests).
#[derive(Debug)]
pub struct ServerHandle {
    addr: String,
    thread: Option<std::thread::JoinHandle<Result<(), String>>>,
}

impl ServerHandle {
    /// The resolved address clients should dial.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests a graceful drain and joins the server thread.
    pub fn stop(mut self) -> Result<(), String> {
        let line = "{\"id\":\"__stop\",\"op\":\"shutdown\"}";
        crate::client::request(&self.addr, line)?;
        match self.thread.take() {
            Some(t) => t.join().map_err(|_| "server thread panicked".to_string())?,
            None => Ok(()),
        }
    }
}

/// Binds `config` and runs the server on a background thread.
pub fn spawn(config: ServeConfig) -> Result<ServerHandle, String> {
    let server = Server::bind(config)?;
    let addr = server.local_addr().to_string();
    let thread = std::thread::spawn(move || server.run());
    Ok(ServerHandle { addr, thread: Some(thread) })
}
