//! Transport: one listener/stream pair over TCP or unix-domain sockets.
//!
//! The address grammar is positional, not schemed: an address containing
//! a `/` is a unix socket path, anything else is a TCP `host:port`. Unix
//! sockets are the default for local tooling (no port allocation, file
//! permissions for access control); TCP serves the remote case. On
//! non-unix platforms path addresses fail with `Unsupported`.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};

/// Whether `addr` names a unix socket path (contains a `/`) rather than
/// a TCP `host:port`.
pub fn is_unix_addr(addr: &str) -> bool {
    addr.contains('/')
}

#[derive(Debug)]
enum ListenerInner {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A bound service endpoint (TCP or unix), with its resolved address.
#[derive(Debug)]
pub struct Listener {
    inner: ListenerInner,
    addr: String,
    path: Option<String>,
}

impl Listener {
    /// Binds `addr`. TCP addresses resolve `:0` to the actual port;
    /// unix paths are re-bound over a stale socket file if one is left
    /// from a crashed predecessor.
    pub fn bind(addr: &str) -> io::Result<Listener> {
        if is_unix_addr(addr) {
            return Listener::bind_unix(addr);
        }
        let inner = TcpListener::bind(addr)?;
        let resolved = inner.local_addr()?.to_string();
        Ok(Listener { inner: ListenerInner::Tcp(inner), addr: resolved, path: None })
    }

    #[cfg(unix)]
    fn bind_unix(path: &str) -> io::Result<Listener> {
        // A stale socket file from a crashed server would fail the bind
        // with AddrInUse; a live server holds the same error. Remove and
        // bind: the stale case succeeds, the live case fails the same
        // way either way.
        let _ = std::fs::remove_file(path);
        let inner = UnixListener::bind(path)?;
        Ok(Listener {
            inner: ListenerInner::Unix(inner),
            addr: path.to_string(),
            path: Some(path.to_string()),
        })
    }

    #[cfg(not(unix))]
    fn bind_unix(_path: &str) -> io::Result<Listener> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix socket paths are unsupported on this platform; use host:port",
        ))
    }

    /// The resolved address (actual TCP port, or the socket path).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<Stream> {
        match &self.inner {
            ListenerInner::Tcp(l) => Ok(Stream::Tcp(l.accept()?.0)),
            #[cfg(unix)]
            ListenerInner::Unix(l) => Ok(Stream::Unix(l.accept()?.0)),
        }
    }

    /// Removes the unix socket file (no-op for TCP). Called on clean
    /// server exit so the path is reusable immediately.
    pub fn cleanup(&self) {
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted or dialed connection.
#[derive(Debug)]
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// An independently owned handle to the same connection (the reader
    /// half of a connection thread while the writer is shared).
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Dials `addr` with the same `/`-means-unix grammar as [`Listener::bind`].
pub fn connect(addr: &str) -> io::Result<Stream> {
    if is_unix_addr(addr) {
        return connect_unix(addr);
    }
    Ok(Stream::Tcp(TcpStream::connect(addr)?))
}

#[cfg(unix)]
fn connect_unix(path: &str) -> io::Result<Stream> {
    Ok(Stream::Unix(UnixStream::connect(path)?))
}

#[cfg(not(unix))]
fn connect_unix(_path: &str) -> io::Result<Stream> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "unix socket paths are unsupported on this platform; use host:port",
    ))
}
