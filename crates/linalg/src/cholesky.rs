//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The WLS estimator's normal-equation matrix `Hᵀ·W·H` (after slack-bus
//! elimination) is symmetric positive definite whenever the system is
//! observable, so Cholesky is both the fastest and the numerically
//! appropriate solver — and a failed factorization doubles as an
//! unobservability signal.

use crate::matrix::Matrix;
use crate::vector::Vector;
use std::fmt;

/// Failure modes shared by the dense and sparse Cholesky paths.
///
/// Dimension problems are errors rather than panics because both paths
/// are reachable from `caseformat`-loaded user case files whose
/// measurement dimensions may be inconsistent; a malformed case must
/// surface as a diagnosable `Err`, not abort the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholeskyError {
    /// A diagonal pivot was not sufficiently positive — for the WLS gain
    /// matrix, the unobservability signal.
    NotPositiveDefinite,
    /// Factorization was asked of a non-square matrix.
    NotSquare { rows: usize, cols: usize },
    /// A solve right-hand side does not match the factored dimension.
    DimensionMismatch { expected: usize, found: usize },
    /// A sparse refactorization was asked against a symbolic analysis of
    /// a different sparsity pattern.
    PatternMismatch,
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite => {
                f.write_str("matrix is not positive definite to working precision")
            }
            CholeskyError::NotSquare { rows, cols } => {
                write!(f, "Cholesky needs a square matrix, got {rows}x{cols}")
            }
            CholeskyError::DimensionMismatch { expected, found } => {
                write!(f, "solve: expected a length-{expected} right-hand side, got {found}")
            }
            CholeskyError::PatternMismatch => {
                f.write_str("matrix pattern differs from the symbolic analysis")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// A Cholesky factorization `A = L·Lᵀ`.
///
/// # Examples
///
/// ```
/// use sta_linalg::{Cholesky, Matrix, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let ch = Cholesky::factor(&a)?;
/// let x = ch.solve(&Vector::from(vec![6.0, 5.0]))?;
/// let back = a.mul_vec(&x);
/// assert!((back[0] - 6.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper part zeroed).
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    /// Returns [`CholeskyError::NotSquare`] for non-square input, and
    /// [`CholeskyError::NotPositiveDefinite`] if a diagonal pivot is not
    /// sufficiently positive.
    pub fn factor(a: &Matrix) -> Result<Cholesky, CholeskyError> {
        if a.num_rows() != a.num_cols() {
            return Err(CholeskyError::NotSquare { rows: a.num_rows(), cols: a.num_cols() });
        }
        let n = a.num_rows();
        let tol = 1e-12 * a.norm_max().max(1.0);
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= tol {
                return Err(CholeskyError::NotPositiveDefinite);
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    /// Returns [`CholeskyError::DimensionMismatch`] if `b.len()` differs
    /// from the factored dimension.
    pub fn solve(&self, b: &Vector) -> Result<Vector, CholeskyError> {
        let n = self.l.num_rows();
        if b.len() != n {
            return Err(CholeskyError::DimensionMismatch { expected: n, found: b.len() });
        }
        // L·y = b
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Lᵀ·x = y
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// The lower-triangular factor.
    pub fn lower(&self) -> &Matrix {
        &self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            vec![25.0, 15.0, -5.0],
            vec![15.0, 18.0, 0.0],
            vec![-5.0, 0.0, 11.0],
        ]);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.lower();
        let back = l.mul_mat(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solves_spd_system() {
        let a = Matrix::from_rows(&[vec![6.0, 2.0], vec![2.0, 5.0]]);
        let b = Vector::from(vec![8.0, 7.0]);
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let back = a.mul_vec(&x);
        assert!((back[0] - 8.0).abs() < 1e-10);
        assert!((back[1] - 7.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn rejects_semidefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn non_square_input_is_an_error_not_a_panic() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            CholeskyError::NotSquare { rows: 2, cols: 3 }
        );
    }

    #[test]
    fn mismatched_rhs_is_an_error_not_a_panic() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert_eq!(
            ch.solve(&Vector::zeros(3)).unwrap_err(),
            CholeskyError::DimensionMismatch { expected: 2, found: 3 }
        );
    }
}
