//! Sparse Cholesky factorization with a fill-reducing ordering.
//!
//! The WLS gain matrix `HᵀWH` inherits the grid's sparsity (a bus couples
//! only to its neighbors), so factoring it densely wastes O(n³) work on
//! structural zeros. This module factors symmetric positive-definite
//! sparse matrices as `P·A·Pᵀ = L·D·Lᵀ` (the square-root-free Cholesky
//! variant: `L` unit lower triangular, `D` positive diagonal), with:
//!
//! * [`amd_order`] — an approximate-minimum-degree permutation `P`,
//!   chosen to keep the factor sparse (applied symmetrically to rows and
//!   columns);
//! * [`SparseSymbolic::analyze`] — the **symbolic** phase: ordering,
//!   elimination tree and per-column fill counts, all functions of the
//!   sparsity pattern alone. One analysis per measurement configuration;
//! * [`SparseSymbolic::factor`] — the **numeric** phase: an up-looking
//!   `LDLᵀ` factorization into the pre-sized factor, cheap to repeat when
//!   only the values change (re-weighted measurements, new operating
//!   points);
//! * [`SparseCholesky::solve`] — permute, forward-solve, diagonal scale,
//!   back-solve, un-permute.
//!
//! Positive definiteness is decided with the same relative tolerance as
//! the dense [`crate::Cholesky`], so "not positive definite" keeps its
//! role as the unobservability signal. All failures are [`CholeskyError`]
//! values — no panics, matching the dense path after the dimension-check
//! conversion.

use crate::cholesky::CholeskyError;
use crate::sparse::CsrMatrix;
use crate::vector::Vector;

/// Sentinel for "no parent" in the elimination tree.
const NONE: usize = usize::MAX;

/// Computes a fill-reducing elimination order for the symmetric matrix
/// `a` by (approximate) minimum degree: repeatedly eliminate a vertex of
/// minimum degree in the quotient graph, turning its neighborhood into a
/// clique. Ties break toward the smallest vertex index, so the order is
/// deterministic. Returns `perm` with `perm[k]` = the original index
/// eliminated at step `k`.
///
/// # Errors
/// Returns [`CholeskyError::NotSquare`] for non-square input.
pub fn amd_order(a: &CsrMatrix) -> Result<Vec<usize>, CholeskyError> {
    if a.num_rows() != a.num_cols() {
        return Err(CholeskyError::NotSquare { rows: a.num_rows(), cols: a.num_cols() });
    }
    let n = a.num_rows();
    // Symmetrized off-diagonal adjacency, sorted and deduplicated.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let (cols, _) = a.row(i);
        for &j in cols {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    // Quotient-graph minimum degree (Amestoy–Davis–Duff style, without
    // supervariables): eliminating a pivot creates an *element* whose
    // member list stands in for the clique, instead of materializing the
    // clique edges. Every node keeps a plain-edge list and an element
    // list; elements adjacent to the pivot are absorbed into the new one,
    // so both lists only shrink between pivots and the whole sweep stays
    // near-linear in nnz instead of O(Σ clique²).
    let mut elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut absorbed = vec![false; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut eliminated = vec![false; n];
    let mut stamp = vec![usize::MAX; n];
    let mut perm = Vec::with_capacity(n);
    for step in 0..n {
        let mut pivot = NONE;
        let mut best = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && degree[v] < best {
                best = degree[v];
                pivot = v;
            }
        }
        eliminated[pivot] = true;
        perm.push(pivot);
        // The pivot's factor-column pattern: plain neighbors plus the
        // members of every adjacent element, deduplicated by stamping.
        stamp[pivot] = step;
        let mut boundary: Vec<usize> = Vec::new();
        for &u in &adj[pivot] {
            if stamp[u] != step {
                stamp[u] = step;
                boundary.push(u);
            }
        }
        let pivot_elems = std::mem::take(&mut elems[pivot]);
        for &e in &pivot_elems {
            for &u in &members[e] {
                if stamp[u] != step {
                    stamp[u] = step;
                    boundary.push(u);
                }
            }
        }
        boundary.sort_unstable();
        // Absorb the pivot's elements into the new element `pivot`.
        for &e in &pivot_elems {
            absorbed[e] = true;
            members[e] = Vec::new();
        }
        members[pivot] = boundary;
        for idx in 0..members[pivot].len() {
            let u = members[pivot][idx];
            // The new element now covers the pivot and every boundary
            // connection, so plain edges into the stamped set are pruned
            // and absorbed elements dropped before attaching it.
            adj[u].retain(|&w| stamp[w] != step);
            elems[u].retain(|&e| !absorbed[e]);
            elems[u].push(pivot);
            // Approximate external degree: plain edges plus element
            // boundaries (overlap between elements counted once each).
            let mut d = adj[u].len();
            for &e in &elems[u] {
                d += members[e].len() - 1;
            }
            degree[u] = d;
        }
    }
    Ok(perm)
}

/// The permuted upper triangle of `a` in compressed sparse column form:
/// entry `(i, j)` of `a` lands in column `iperm[j]` at row `iperm[i]`
/// when `iperm[i] <= iperm[j]`. Rows come out ascending per column. The
/// input must carry its full symmetric pattern (both triangles), which
/// `HᵀWH`-style products always do.
fn permuted_upper(a: &CsrMatrix, iperm: &[usize]) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let n = a.num_rows();
    let mut col_counts = vec![0usize; n + 1];
    for i in 0..n {
        let (cols, _) = a.row(i);
        for &j in cols {
            if iperm[i] <= iperm[j] {
                col_counts[iperm[j] + 1] += 1;
            }
        }
    }
    for k in 0..n {
        col_counts[k + 1] += col_counts[k];
    }
    let nnz = col_counts[n];
    let mut row_idx = vec![0usize; nnz];
    let mut vals = vec![0f64; nnz];
    let mut next = col_counts.clone();
    // Two passes keyed on the permuted row index keep each column's rows
    // ascending without a per-column sort.
    let mut by_row: Vec<(usize, usize, f64)> = Vec::with_capacity(nnz);
    for i in 0..n {
        let (cols, values) = a.row(i);
        for (&j, &v) in cols.iter().zip(values) {
            if iperm[i] <= iperm[j] {
                by_row.push((iperm[i], iperm[j], v));
            }
        }
    }
    by_row.sort_unstable_by_key(|&(pi, _, _)| pi);
    for &(pi, pj, v) in &by_row {
        let slot = next[pj];
        next[pj] += 1;
        row_idx[slot] = pi;
        vals[slot] = v;
    }
    (col_counts, row_idx, vals)
}

/// The pattern-only product of a sparse Cholesky analysis: ordering,
/// elimination tree, factor column counts, and the analyzed upper
/// pattern (used to reject numerically incompatible refactor inputs).
#[derive(Debug, Clone)]
pub struct SparseSymbolic {
    n: usize,
    /// `perm[k]` = original index eliminated at step `k`.
    perm: Vec<usize>,
    /// Inverse permutation: `iperm[perm[k]] = k`.
    iperm: Vec<usize>,
    /// Elimination tree over permuted indices (`NONE` = root).
    parent: Vec<usize>,
    /// Column pointers of `L` (sized from the symbolic fill counts).
    lp: Vec<usize>,
    /// Analyzed permuted-upper pattern, for refactor compatibility checks.
    up_ptr: Vec<usize>,
    up_idx: Vec<usize>,
}

impl SparseSymbolic {
    /// Runs the symbolic phase on the pattern of `a`: AMD ordering,
    /// elimination tree, and fill counts of `L`. The values of `a` are
    /// ignored; any matrix with the same pattern can be factored against
    /// this analysis with [`SparseSymbolic::factor`].
    ///
    /// # Errors
    /// Returns [`CholeskyError::NotSquare`] for non-square input.
    pub fn analyze(a: &CsrMatrix) -> Result<SparseSymbolic, CholeskyError> {
        let perm = amd_order(a)?;
        let n = a.num_rows();
        let mut iperm = vec![0usize; n];
        for (k, &orig) in perm.iter().enumerate() {
            iperm[orig] = k;
        }
        let (up_ptr, up_idx, _) = permuted_upper(a, &iperm);
        // Elimination tree and per-column nonzero counts of L (Davis's
        // LDL symbolic pass): the pattern of row k of L is every vertex
        // on an etree path from a nonzero of A(0..k, k) up to k.
        let mut parent = vec![NONE; n];
        let mut lnz = vec![0usize; n];
        let mut flag = vec![NONE; n];
        for k in 0..n {
            flag[k] = k;
            for p in up_ptr[k]..up_ptr[k + 1] {
                let mut i = up_idx[p];
                while i != k && flag[i] != k {
                    if parent[i] == NONE {
                        parent[i] = k;
                    }
                    lnz[i] += 1;
                    flag[i] = k;
                    i = parent[i];
                }
            }
        }
        let mut lp = vec![0usize; n + 1];
        for k in 0..n {
            lp[k + 1] = lp[k] + lnz[k];
        }
        Ok(SparseSymbolic { n, perm, iperm, parent, lp, up_ptr, up_idx })
    }

    /// The fill-reducing permutation (`perm[k]` = original index at
    /// elimination step `k`).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Stored entries of `L` below the unit diagonal, as analyzed.
    pub fn factor_nnz(&self) -> usize {
        self.lp[self.n]
    }

    /// Runs the numeric phase: factors `a` (which must have the analyzed
    /// pattern) as `P·A·Pᵀ = L·D·Lᵀ` using an up-looking sweep.
    ///
    /// # Errors
    /// * [`CholeskyError::PatternMismatch`] if `a`'s pattern differs
    ///   from the analyzed one (shape or structure);
    /// * [`CholeskyError::NotPositiveDefinite`] if a pivot of `D` is not
    ///   sufficiently positive — the unobservability signal.
    pub fn factor(&self, a: &CsrMatrix) -> Result<SparseCholesky, CholeskyError> {
        if a.num_rows() != self.n || a.num_cols() != self.n {
            return Err(CholeskyError::PatternMismatch);
        }
        let n = self.n;
        let (up_ptr, up_idx, up_val) = permuted_upper(a, &self.iperm);
        if up_ptr != self.up_ptr || up_idx != self.up_idx {
            return Err(CholeskyError::PatternMismatch);
        }
        let tol = 1e-12 * a.norm_max().max(1.0);
        let mut li = vec![0usize; self.lp[n]];
        let mut lx = vec![0f64; self.lp[n]];
        let mut d = vec![0f64; n];
        let mut y = vec![0f64; n];
        let mut flag = vec![NONE; n];
        let mut pattern = vec![0usize; n];
        let mut path: Vec<usize> = Vec::with_capacity(n);
        // Next free slot per column of L.
        let mut lnz_next: Vec<usize> = self.lp[..n].to_vec();
        for k in 0..n {
            // Scatter column k of the permuted upper triangle into y and
            // collect the nonzero pattern of row k of L in topological
            // order (descendants before ancestors).
            let mut top = n;
            flag[k] = k;
            for p in up_ptr[k]..up_ptr[k + 1] {
                let i = up_idx[p];
                y[i] += up_val[p];
                path.clear();
                let mut ii = i;
                while flag[ii] != k {
                    path.push(ii);
                    flag[ii] = k;
                    ii = self.parent[ii];
                }
                for &node in path.iter().rev() {
                    top -= 1;
                    pattern[top] = node;
                }
            }
            d[k] = y[k];
            y[k] = 0.0;
            // Sparse triangular solve L(0..k, 0..k)·l = y, updating D.
            for t in top..n {
                let i = pattern[t];
                let yi = y[i];
                y[i] = 0.0;
                for p in self.lp[i]..lnz_next[i] {
                    y[li[p]] -= lx[p] * yi;
                }
                let l_ki = yi / d[i];
                d[k] -= l_ki * yi;
                li[lnz_next[i]] = k;
                lx[lnz_next[i]] = l_ki;
                lnz_next[i] += 1;
            }
            if d[k] <= tol {
                return Err(CholeskyError::NotPositiveDefinite);
            }
        }
        Ok(SparseCholesky {
            n,
            perm: self.perm.clone(),
            lp: self.lp.clone(),
            li,
            lx,
            d,
        })
    }
}

/// A sparse `P·A·Pᵀ = L·D·Lᵀ` factorization, ready for repeated solves.
///
/// # Examples
///
/// ```
/// use sta_linalg::{CsrMatrix, SparseCholesky, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A small SPD arrowhead matrix.
/// let a = CsrMatrix::from_triplets(3, 3, &[
///     (0, 0, 4.0), (1, 1, 3.0), (2, 2, 5.0),
///     (0, 2, 1.0), (2, 0, 1.0), (1, 2, -1.0), (2, 1, -1.0),
/// ]);
/// let ch = SparseCholesky::factor(&a)?;
/// let x = ch.solve(&Vector::from(vec![1.0, 2.0, 3.0]))?;
/// let back = a.mul_vec(&x);
/// assert!((back[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseCholesky {
    n: usize,
    perm: Vec<usize>,
    lp: Vec<usize>,
    li: Vec<usize>,
    lx: Vec<f64>,
    d: Vec<f64>,
}

impl SparseCholesky {
    /// Analyzes and factors in one step. Prefer holding a
    /// [`SparseSymbolic`] when the same pattern is factored repeatedly.
    ///
    /// # Errors
    /// As [`SparseSymbolic::analyze`] and [`SparseSymbolic::factor`].
    pub fn factor(a: &CsrMatrix) -> Result<SparseCholesky, CholeskyError> {
        SparseSymbolic::analyze(a)?.factor(a)
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries of `L` below the unit diagonal (the fill the AMD
    /// ordering is minimizing).
    pub fn factor_nnz(&self) -> usize {
        self.lp[self.n]
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    /// Returns [`CholeskyError::DimensionMismatch`] if `b.len()` differs
    /// from the factored dimension.
    pub fn solve(&self, b: &Vector) -> Result<Vector, CholeskyError> {
        if b.len() != self.n {
            return Err(CholeskyError::DimensionMismatch {
                expected: self.n,
                found: b.len(),
            });
        }
        let n = self.n;
        // Permute into elimination order.
        let mut y = vec![0f64; n];
        for k in 0..n {
            y[k] = b[self.perm[k]];
        }
        // L·z = y (unit diagonal, columns store the strictly-lower part).
        for k in 0..n {
            let yk = y[k];
            if yk != 0.0 {
                for p in self.lp[k]..self.lp[k + 1] {
                    y[self.li[p]] -= self.lx[p] * yk;
                }
            }
        }
        // D·w = z.
        for k in 0..n {
            y[k] /= self.d[k];
        }
        // Lᵀ·v = w.
        for k in (0..n).rev() {
            let mut acc = y[k];
            for p in self.lp[k]..self.lp[k + 1] {
                acc -= self.lx[p] * y[self.li[p]];
            }
            y[k] = acc;
        }
        // Un-permute.
        let mut x = Vector::zeros(n);
        for k in 0..n {
            x[self.perm[k]] = y[k];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::Cholesky;

    /// A pentadiagonal SPD matrix (diagonally dominant).
    fn banded(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 6.0));
            if i + 1 < n {
                t.push((i, i + 1, -2.0));
                t.push((i + 1, i, -2.0));
            }
            if i + 2 < n {
                t.push((i, i + 2, 0.5));
                t.push((i + 2, i, 0.5));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn amd_returns_a_permutation() {
        let a = banded(12);
        let perm = amd_order(&a).expect("square");
        let mut seen = vec![false; 12];
        for &p in &perm {
            assert!(!seen[p], "duplicate index {p}");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn solve_matches_dense_cholesky() {
        let a = banded(20);
        let dense = a.to_dense();
        let b = Vector::from((0..20).map(|i| (i as f64 * 0.37).sin()).collect::<Vec<_>>());
        let xs = SparseCholesky::factor(&a).expect("spd").solve(&b).expect("dim");
        let xd = Cholesky::factor(&dense).expect("spd").solve(&b).expect("dim");
        for i in 0..20 {
            assert!((xs[i] - xd[i]).abs() < 1e-10, "component {i}");
        }
    }

    #[test]
    fn symbolic_reuse_is_identical_to_fresh_factorization() {
        let a = banded(16);
        let sym = SparseSymbolic::analyze(&a).expect("square");
        // A different SPD matrix with the same pattern (scaled values).
        let scaled = a.scale_rows(&[2.0; 16]).scale_cols(&[0.5; 16]);
        let b = Vector::from(vec![1.0; 16]);
        let x_reused = sym.factor(&scaled).expect("spd").solve(&b).expect("dim");
        let x_fresh = SparseCholesky::factor(&scaled).expect("spd").solve(&b).expect("dim");
        for i in 0..16 {
            assert_eq!(x_reused[i], x_fresh[i], "component {i}");
        }
    }

    #[test]
    fn rejects_indefinite_and_semidefinite() {
        let indef = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 1.0)],
        );
        assert_eq!(
            SparseCholesky::factor(&indef).unwrap_err(),
            CholeskyError::NotPositiveDefinite
        );
        let semi = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)],
        );
        assert!(SparseCholesky::factor(&semi).is_err());
        // All-zero matrices (the empty-measurement gain) are rejected too.
        assert!(SparseCholesky::factor(&CsrMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn dimension_errors_are_values_not_panics() {
        let rect = CsrMatrix::zeros(2, 3);
        assert!(matches!(
            SparseCholesky::factor(&rect),
            Err(CholeskyError::NotSquare { rows: 2, cols: 3 })
        ));
        let a = banded(4);
        let ch = SparseCholesky::factor(&a).expect("spd");
        assert!(matches!(
            ch.solve(&Vector::zeros(5)),
            Err(CholeskyError::DimensionMismatch { expected: 4, found: 5 })
        ));
    }

    #[test]
    fn pattern_mismatch_is_reported() {
        let a = banded(8);
        let sym = SparseSymbolic::analyze(&a).expect("square");
        let other = CsrMatrix::from_triplets(
            8,
            8,
            &(0..8).map(|i| (i, i, 1.0)).collect::<Vec<_>>(),
        );
        assert_eq!(sym.factor(&other).unwrap_err(), CholeskyError::PatternMismatch);
        assert_eq!(
            sym.factor(&CsrMatrix::zeros(9, 9)).unwrap_err(),
            CholeskyError::PatternMismatch
        );
    }

    #[test]
    fn amd_reduces_fill_on_an_arrowhead() {
        // Natural order eliminates the hub first and fills everything;
        // minimum degree defers it and keeps the factor linear-sized.
        let n = 24;
        let mut t = vec![(0usize, 0usize, 10.0)];
        for i in 1..n {
            t.push((i, i, 10.0));
            t.push((0, i, 1.0));
            t.push((i, 0, 1.0));
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let ch = SparseCholesky::factor(&a).expect("spd");
        assert!(
            ch.factor_nnz() <= n,
            "arrowhead fill {} exceeds linear bound {n}",
            ch.factor_nnz()
        );
        let empty = SparseSymbolic::analyze(&a).expect("square");
        assert_eq!(empty.factor_nnz(), ch.factor_nnz());
    }

    #[test]
    fn zero_dimension_factors_and_solves() {
        let a = CsrMatrix::zeros(0, 0);
        let ch = SparseCholesky::factor(&a).expect("vacuously spd");
        assert_eq!(ch.solve(&Vector::zeros(0)).expect("dim").len(), 0);
    }
}
