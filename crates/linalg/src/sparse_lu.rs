//! Markowitz-ordered sparse LU over an abstract coefficient field, plus a
//! product-form [`FactorizedBasis`] with eta-file column replacement.
//!
//! This is the factorization substrate for the revised simplex in `sta-smt`:
//! the basis matrix `A_B` is factored once into sparse triangular factors,
//! each pivot replaces one basis column by appending a sparse *eta* vector
//! (product-form-of-the-inverse update, Forrest–Tomlin-style bookkeeping),
//! and FTRAN/BTRAN solves replay the factors plus the eta chain. The solver
//! refactorizes when the chain grows past its policy thresholds.
//!
//! Everything is generic over a [`Scalar`] coefficient field so the same
//! kernels serve `f64` (tested here against the dense [`crate::Lu`] oracle)
//! and the exact rationals of `sta-smt`, whose trait impls live next to the
//! `Rational` type. Right-hand sides are generic over [`VectorElem`] so a
//! rational factorization can solve delta-rational systems (assignments with
//! an infinitesimal component) without re-factoring.
//!
//! Pivot choice follows the classical Markowitz heuristic specialized to a
//! minimum-column-count sweep: pick the active column with the fewest
//! entries (ties to the smallest index), then within it the row with the
//! fewest entries (ties to the smallest index). With a fixed column this
//! minimizes the Markowitz cost `(r−1)(c−1)`; singleton columns — the
//! common case for simplex bases dominated by slack variables — eliminate
//! with zero fill and are found by an early exit. Selection is fully
//! deterministic: equal inputs factor identically on every run.
//!
//! Exactness note: over an exact field any structurally admissible nonzero
//! pivot is numerically safe, so there is no threshold pivoting — the
//! ordering is chosen for sparsity alone. Over `f64` this is adequate for
//! the well-scaled bases the tests draw, but the dense partial-pivoting
//! [`crate::Lu`] remains the right tool for general floating-point systems.

use std::collections::BTreeMap;

/// An exact (or approximately exact) coefficient field.
///
/// Implemented for `f64` here and for `sta-smt`'s `Rational` in that crate.
/// `recip` is only ever called on values for which `is_zero` is false.
pub trait Scalar: Clone + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Exact test against the additive identity.
    fn is_zero(&self) -> bool;
    /// `self + other`.
    fn add(&self, other: &Self) -> Self;
    /// `self − other`.
    fn sub(&self, other: &Self) -> Self;
    /// `self · other`.
    fn mul(&self, other: &Self) -> Self;
    /// `−self`.
    fn neg(&self) -> Self;
    /// `1 / self` (caller guarantees `self` is nonzero).
    fn recip(&self) -> Self;
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn neg(&self) -> Self {
        -self
    }
    fn recip(&self) -> Self {
        1.0 / self
    }
}

/// Element type of a right-hand-side vector solvable against factors with
/// scalar type `S`. The blanket impl covers `S` itself; `sta-smt` adds
/// `DeltaRational` over `Rational`.
pub trait VectorElem<S>: Clone + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Exact test against the additive identity.
    fn is_zero(&self) -> bool;
    /// `self + other`.
    fn add(&self, other: &Self) -> Self;
    /// `self − other`.
    fn sub(&self, other: &Self) -> Self;
    /// `self · k` for a scalar `k`.
    fn scale(&self, k: &S) -> Self;
}

impl<S: Scalar> VectorElem<S> for S {
    fn zero() -> Self {
        Scalar::zero()
    }
    fn is_zero(&self) -> bool {
        Scalar::is_zero(self)
    }
    fn add(&self, other: &Self) -> Self {
        Scalar::add(self, other)
    }
    fn sub(&self, other: &Self) -> Self {
        Scalar::sub(self, other)
    }
    fn scale(&self, k: &S) -> Self {
        Scalar::mul(self, k)
    }
}

/// Why a factorization or solve stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuError {
    /// The matrix (or a replacement column's pivot entry) is singular.
    Singular,
    /// The caller's poll callback requested an interrupt; no state was
    /// mutated (factorizations build into a fresh object, solves work on
    /// scratch).
    Interrupted,
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::Singular => write!(f, "singular basis matrix"),
            LuError::Interrupted => write!(f, "interrupted by poll callback"),
        }
    }
}

impl std::error::Error for LuError {}

/// One elimination step of the factorization, in elimination order.
///
/// Replaying the steps forward applies `L⁻¹` (the recorded multipliers);
/// replaying them backward with the stored pivot-row entries applies `U⁻¹`.
#[derive(Debug, Clone)]
struct PivotStep<S> {
    /// Pivot row (right-hand-side slot this step eliminates into).
    row: usize,
    /// Pivot column (solution slot this step determines).
    col: usize,
    /// Cached reciprocal of the pivot value.
    inv_diag: S,
    /// `(row, multiplier)`: during elimination, `work[row] −= m·work[pivot_row]`.
    l: Vec<(usize, S)>,
    /// Remaining pivot-row entries `(col, value)` over columns eliminated
    /// by *later* steps (the strict upper part in elimination order).
    u: Vec<(usize, S)>,
}

/// A sparse LU factorization of a square matrix given by columns.
///
/// Produced by [`SparseLu::factor`]; consumed by the FTRAN/BTRAN solves,
/// usually through a [`FactorizedBasis`] that layers eta updates on top.
#[derive(Debug, Clone)]
pub struct SparseLu<S> {
    n: usize,
    steps: Vec<PivotStep<S>>,
    nnz: usize,
}

/// How often the solve kernels invoke the poll callback (in steps). The
/// callback itself is expected to be cheap; this just keeps the dynamic
/// call out of the innermost scatter loops.
const SOLVE_POLL_STRIDE: usize = 64;

impl<S: Scalar> SparseLu<S> {
    /// Factors the square matrix whose `j`-th column holds the sparse
    /// entries `cols[j]` as `(row, value)` pairs (rows need not be sorted;
    /// duplicates are not allowed; exact zeros are dropped).
    ///
    /// `poll` is invoked once per elimination step; returning `true`
    /// abandons the factorization with [`LuError::Interrupted`]. Pass
    /// `&mut || false` when no budget applies.
    pub fn factor(
        cols: &[Vec<(usize, S)>],
        poll: &mut dyn FnMut() -> bool,
    ) -> Result<SparseLu<S>, LuError> {
        let n = cols.len();
        // Row-major working copy of the active submatrix. BTreeMaps keep
        // iteration deterministic (pinned by the determinism lint rule).
        let mut rows: Vec<BTreeMap<usize, S>> = vec![BTreeMap::new(); n];
        for (j, col) in cols.iter().enumerate() {
            for (i, v) in col {
                if !v.is_zero() {
                    rows[*i].insert(j, v.clone());
                }
            }
        }
        // Column occupancy: which active rows mention each column. Kept
        // exact (entries removed on cancellation) so counts are true
        // Markowitz counts, not upper bounds.
        let mut col_rows: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); n];
        for (i, row) in rows.iter().enumerate() {
            for &j in row.keys() {
                col_rows[j].insert(i);
            }
        }
        let mut row_active = vec![true; n];
        let mut col_active = vec![true; n];
        let mut steps: Vec<PivotStep<S>> = Vec::with_capacity(n);
        let mut nnz = 0usize;
        for _ in 0..n {
            if poll() {
                return Err(LuError::Interrupted);
            }
            // Minimum-count active column, ties to the smallest index;
            // early exit on singletons (zero Markowitz cost).
            let mut best_col: Option<(usize, usize)> = None; // (count, col)
            for (j, active) in col_active.iter().enumerate() {
                if !active {
                    continue;
                }
                let count = col_rows[j].len();
                if count == 0 {
                    return Err(LuError::Singular);
                }
                match best_col {
                    Some((c, _)) if c <= count => {}
                    _ => best_col = Some((count, j)),
                }
                if count == 1 {
                    break;
                }
            }
            let Some((_, pc)) = best_col else {
                break; // no active columns left (n reached)
            };
            // Within the column: minimum-count row, ties to the smallest.
            let mut pr = usize::MAX;
            let mut pr_len = usize::MAX;
            for &i in &col_rows[pc] {
                let len = rows[i].len();
                if len < pr_len {
                    pr_len = len;
                    pr = i;
                }
            }
            let mut pivot_row = std::mem::take(&mut rows[pr]);
            // The pivot entry is present by construction (pr came from the
            // column's occupancy set); a miss means the matrix walked
            // outside the invariant, which only a singular input can cause.
            let Some(diag) = pivot_row.remove(&pc) else {
                return Err(LuError::Singular);
            };
            let inv_diag = diag.recip();
            row_active[pr] = false;
            col_active[pc] = false;
            for &j in pivot_row.keys() {
                col_rows[j].remove(&pr);
            }
            // Eliminate the pivot column from every other row touching it.
            let victims: Vec<usize> =
                col_rows[pc].iter().copied().filter(|&i| i != pr).collect();
            let mut l = Vec::with_capacity(victims.len());
            for i in victims {
                let Some(a) = rows[i].remove(&pc) else {
                    return Err(LuError::Singular);
                };
                let m = a.mul(&inv_diag);
                for (j, v) in &pivot_row {
                    let delta = m.mul(v).neg();
                    match rows[i].entry(*j) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            if !delta.is_zero() {
                                e.insert(delta);
                                col_rows[*j].insert(i);
                            }
                        }
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            let sum = e.get().add(&delta);
                            if sum.is_zero() {
                                e.remove();
                                col_rows[*j].remove(&i);
                            } else {
                                *e.get_mut() = sum;
                            }
                        }
                    }
                }
                l.push((i, m));
            }
            col_rows[pc].clear();
            let u: Vec<(usize, S)> = pivot_row.into_iter().collect();
            nnz += 1 + l.len() + u.len();
            steps.push(PivotStep { row: pr, col: pc, inv_diag, l, u });
        }
        if steps.len() != n {
            return Err(LuError::Singular);
        }
        Ok(SparseLu { n, steps, nnz })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored factor entries (diagonal + multipliers + upper rows).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Solves `A·x = b` where `b` is indexed by matrix row; the result is
    /// indexed by matrix column. Zero right-hand-side slots are skipped, so
    /// sparse inputs solve in time proportional to the reachable factor
    /// entries.
    pub fn solve<E: VectorElem<S>>(
        &self,
        mut b: Vec<E>,
        poll: &mut dyn FnMut() -> bool,
    ) -> Result<Vec<E>, LuError> {
        debug_assert_eq!(b.len(), self.n);
        // Forward pass: b := L⁻¹·b, replaying multipliers in order.
        for (k, step) in self.steps.iter().enumerate() {
            if k % SOLVE_POLL_STRIDE == 0 && poll() {
                return Err(LuError::Interrupted);
            }
            if b[step.row].is_zero() {
                continue;
            }
            for (r, m) in &step.l {
                let delta = b[step.row].scale(m);
                b[*r] = b[*r].sub(&delta);
            }
        }
        // Back substitution: x[col_k] from later-determined columns.
        let mut x: Vec<E> = vec![E::zero(); self.n];
        for (k, step) in self.steps.iter().enumerate().rev() {
            if k % SOLVE_POLL_STRIDE == 0 && poll() {
                return Err(LuError::Interrupted);
            }
            let mut acc = b[step.row].clone();
            for (j, v) in &step.u {
                if !x[*j].is_zero() {
                    acc = acc.sub(&x[*j].scale(v));
                }
            }
            x[step.col] = acc.scale(&step.inv_diag);
        }
        Ok(x)
    }

    /// Solves `Aᵀ·y = c` where `c` is indexed by matrix column; the result
    /// is indexed by matrix row.
    pub fn solve_transpose<E: VectorElem<S>>(
        &self,
        c: Vec<E>,
        poll: &mut dyn FnMut() -> bool,
    ) -> Result<Vec<E>, LuError> {
        debug_assert_eq!(c.len(), self.n);
        // Uᵀ pass in elimination order with a scatter accumulator: each
        // step determines y[row_k] from c[col_k] minus earlier steps'
        // upper-entry contributions, then scatters its own.
        let mut y: Vec<E> = vec![E::zero(); self.n];
        let mut acc: Vec<E> = vec![E::zero(); self.n];
        for (k, step) in self.steps.iter().enumerate() {
            if k % SOLVE_POLL_STRIDE == 0 && poll() {
                return Err(LuError::Interrupted);
            }
            let z = c[step.col].sub(&acc[step.col]).scale(&step.inv_diag);
            if !z.is_zero() {
                for (j, v) in &step.u {
                    acc[*j] = acc[*j].add(&z.scale(v));
                }
            }
            y[step.row] = z;
        }
        // Lᵀ pass in reverse order: y[row_k] −= Σ m·y[r].
        for (k, step) in self.steps.iter().enumerate().rev() {
            if k % SOLVE_POLL_STRIDE == 0 && poll() {
                return Err(LuError::Interrupted);
            }
            let mut z = y[step.row].clone();
            for (r, m) in &step.l {
                if !y[*r].is_zero() {
                    z = z.sub(&y[*r].scale(m));
                }
            }
            y[step.row] = z;
        }
        Ok(y)
    }
}

/// A sparse eta vector: the product-form update recording one basis-column
/// replacement at `pos`.
#[derive(Debug, Clone)]
struct Eta<S> {
    pos: usize,
    /// Off-position entries of the replacement column in basis coordinates.
    d: Vec<(usize, S)>,
    /// Reciprocal of the column's entry at `pos`.
    inv_diag: S,
}

/// A factorized basis: sparse LU plus a chain of eta updates, supporting
/// FTRAN/BTRAN solves and O(column) basis replacement.
///
/// The eta chain implements the product form of the inverse: after `t`
/// replacements the basis is `B = B₀·E₁·…·E_t` where `E_k` is the identity
/// with one column overwritten. FTRAN applies `E⁻¹` factors oldest→newest
/// after the LU solve; BTRAN applies their transposes newest→oldest before
/// the transpose LU solve. The owner refactorizes (builds a fresh
/// [`SparseLu`] and drops the chain) when [`FactorizedBasis::eta_count`] or
/// [`FactorizedBasis::eta_nnz`] outgrow its policy.
#[derive(Debug, Clone)]
pub struct FactorizedBasis<S> {
    lu: SparseLu<S>,
    etas: Vec<Eta<S>>,
    eta_nnz: usize,
}

impl<S: Scalar> FactorizedBasis<S> {
    /// Wraps a fresh factorization with an empty eta chain.
    pub fn new(lu: SparseLu<S>) -> FactorizedBasis<S> {
        FactorizedBasis { lu, etas: Vec::new(), eta_nnz: 0 }
    }

    /// Basis dimension.
    pub fn dim(&self) -> usize {
        self.lu.dim()
    }

    /// Length of the eta chain (column replacements since refactorization).
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Total stored eta entries (fill proxy for the refactorization policy).
    pub fn eta_nnz(&self) -> usize {
        self.eta_nnz
    }

    /// Stored entries of the underlying LU factors.
    pub fn lu_nnz(&self) -> usize {
        self.lu.nnz()
    }

    /// FTRAN: solves `B·x = b` with `b` indexed by constraint row; the
    /// result is indexed by basis position.
    pub fn ftran<E: VectorElem<S>>(
        &self,
        b: Vec<E>,
        poll: &mut dyn FnMut() -> bool,
    ) -> Result<Vec<E>, LuError> {
        let mut z = self.lu.solve(b, poll)?;
        for (k, eta) in self.etas.iter().enumerate() {
            if k % SOLVE_POLL_STRIDE == 0 && poll() {
                return Err(LuError::Interrupted);
            }
            // z := E⁻¹z with E's column `pos` holding d (diag at pos).
            let zp = z[eta.pos].scale(&eta.inv_diag);
            if !zp.is_zero() {
                for (r, dv) in &eta.d {
                    let delta = zp.scale(dv);
                    z[*r] = z[*r].sub(&delta);
                }
            }
            z[eta.pos] = zp;
        }
        Ok(z)
    }

    /// BTRAN: solves `Bᵀ·y = c` with `c` indexed by basis position; the
    /// result is indexed by constraint row.
    pub fn btran<E: VectorElem<S>>(
        &self,
        mut c: Vec<E>,
        poll: &mut dyn FnMut() -> bool,
    ) -> Result<Vec<E>, LuError> {
        for (k, eta) in self.etas.iter().enumerate().rev() {
            if k % SOLVE_POLL_STRIDE == 0 && poll() {
                return Err(LuError::Interrupted);
            }
            // c := E⁻ᵀc: only the `pos` slot changes.
            let mut acc = c[eta.pos].clone();
            for (r, dv) in &eta.d {
                if !c[*r].is_zero() {
                    acc = acc.sub(&c[*r].scale(dv));
                }
            }
            c[eta.pos] = acc.scale(&eta.inv_diag);
        }
        self.lu.solve_transpose(c, poll)
    }

    /// Replaces basis column `pos` with the column whose FTRAN image is the
    /// sparse vector `d` (i.e. `d = B⁻¹·a_new` in basis coordinates, the
    /// vector the simplex pivot already computed), appending one eta.
    ///
    /// Fails with [`LuError::Singular`] if `d` has no entry at `pos` — such
    /// a replacement would make the basis singular.
    pub fn replace_column(&mut self, pos: usize, d: &[(usize, S)]) -> Result<(), LuError> {
        let mut diag: Option<S> = None;
        let mut off = Vec::with_capacity(d.len().saturating_sub(1));
        for (r, v) in d {
            if v.is_zero() {
                continue;
            }
            if *r == pos {
                diag = Some(v.clone());
            } else {
                off.push((*r, v.clone()));
            }
        }
        let Some(diag) = diag else {
            return Err(LuError::Singular);
        };
        self.eta_nnz += 1 + off.len();
        self.etas.push(Eta { pos, d: off, inv_diag: diag.recip() });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::rng::Pcg32;
    use crate::vector::Vector;
    use crate::Lu;

    fn never() -> impl FnMut() -> bool {
        || false
    }

    fn cols_of(a: &Matrix) -> Vec<Vec<(usize, f64)>> {
        let n = a.num_rows();
        (0..n)
            .map(|j| {
                (0..n)
                    .filter(|&i| a[(i, j)] != 0.0)
                    .map(|i| (i, a[(i, j)]))
                    .collect()
            })
            .collect()
    }

    fn random_sparse(rng: &mut Pcg32, n: usize) -> Matrix {
        // Diagonally dominant sparse matrix: nonsingular by construction.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = rng.uniform_f64(5.0, 10.0);
            for _ in 0..2 {
                let j = rng.below(n);
                if j != i {
                    a[(i, j)] = rng.uniform_f64(-1.0, 1.0);
                }
            }
        }
        a
    }

    #[test]
    fn solve_matches_dense_lu() {
        let mut rng = Pcg32::new(0x5e5e);
        for _ in 0..32 {
            let n = 3 + rng.below(8);
            let a = random_sparse(&mut rng, n);
            let b: Vec<f64> = (0..n).map(|_| rng.uniform_f64(-4.0, 4.0)).collect();
            let sparse = SparseLu::factor(&cols_of(&a), &mut never()).unwrap();
            let x = sparse.solve(b.clone(), &mut never()).unwrap();
            let dense = Lu::factor(&a).unwrap().solve(&Vector::from(b)).unwrap();
            for i in 0..n {
                // No threshold pivoting (sparsity-ordered; exact fields are the
                // primary consumer), so f64 comparisons get a roundoff margin.
                assert!((x[i] - dense[i]).abs() < 1e-6, "mismatch at {i}");
            }
        }
    }

    #[test]
    fn transpose_solve_matches_dense_lu() {
        let mut rng = Pcg32::new(0x6f6f);
        for _ in 0..32 {
            let n = 3 + rng.below(8);
            let a = random_sparse(&mut rng, n);
            let c: Vec<f64> = (0..n).map(|_| rng.uniform_f64(-4.0, 4.0)).collect();
            let sparse = SparseLu::factor(&cols_of(&a), &mut never()).unwrap();
            let y = sparse.solve_transpose(c.clone(), &mut never()).unwrap();
            let at = a.transpose();
            let dense = Lu::factor(&at).unwrap().solve(&Vector::from(c.clone())).unwrap();
            for i in 0..n {
                let e = (y[i] - dense[i]).abs();
                let r: f64 =
                    (0..n).map(|ii| a[(ii, i)] * y[ii]).sum::<f64>() - c[i];
                assert!(e < 1e-6, "mismatch at {i}: err={e:e} resid={r:e}");
            }
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        // Second column identically zero.
        let cols: Vec<Vec<(usize, f64)>> = vec![vec![(0, 1.0)], vec![], vec![(2, 1.0)]];
        assert_eq!(
            SparseLu::factor(&cols, &mut never()).unwrap_err(),
            LuError::Singular
        );
    }

    #[test]
    fn poll_interrupts_factor_and_solves() {
        let a = random_sparse(&mut Pcg32::new(0x77), 6);
        assert_eq!(
            SparseLu::factor(&cols_of(&a), &mut || true).unwrap_err(),
            LuError::Interrupted
        );
        let lu = SparseLu::factor(&cols_of(&a), &mut never()).unwrap();
        let b = vec![1.0; 6];
        assert_eq!(lu.solve(b.clone(), &mut || true).unwrap_err(), LuError::Interrupted);
        assert_eq!(
            lu.solve_transpose(b, &mut || true).unwrap_err(),
            LuError::Interrupted
        );
    }

    /// Replace columns one at a time and check FTRAN/BTRAN against a dense
    /// factorization of the replaced matrix.
    #[test]
    fn eta_updates_track_column_replacement() {
        let mut rng = Pcg32::new(0x8a8a);
        for _ in 0..16 {
            let n = 4 + rng.below(5);
            let mut a = random_sparse(&mut rng, n);
            let lu = SparseLu::factor(&cols_of(&a), &mut never()).unwrap();
            let mut basis = FactorizedBasis::new(lu);
            for _ in 0..3 {
                // New column: dominant on a random position to keep the
                // replaced matrix comfortably nonsingular.
                let pos = rng.below(n);
                let mut col = vec![0.0; n];
                col[pos] = rng.uniform_f64(4.0, 8.0);
                col[(pos + 1) % n] = rng.uniform_f64(-1.0, 1.0);
                let d = basis.ftran(col.clone(), &mut never()).unwrap();
                let sparse_d: Vec<(usize, f64)> = d
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.abs() > 1e-12)
                    .map(|(i, v)| (i, *v))
                    .collect();
                basis.replace_column(pos, &sparse_d).unwrap();
                for i in 0..n {
                    a[(i, pos)] = col[i];
                }
                // FTRAN against dense solve of the updated matrix.
                let b: Vec<f64> = (0..n).map(|_| rng.uniform_f64(-3.0, 3.0)).collect();
                let x = basis.ftran(b.clone(), &mut never()).unwrap();
                let dense = Lu::factor(&a).unwrap().solve(&Vector::from(b)).unwrap();
                for i in 0..n {
                    assert!((x[i] - dense[i]).abs() < 1e-7, "ftran mismatch at {i}");
                }
                // BTRAN against dense transpose solve.
                let c: Vec<f64> = (0..n).map(|_| rng.uniform_f64(-3.0, 3.0)).collect();
                let y = basis.btran(c.clone(), &mut never()).unwrap();
                let dt =
                    Lu::factor(&a.transpose()).unwrap().solve(&Vector::from(c)).unwrap();
                for i in 0..n {
                    assert!((y[i] - dt[i]).abs() < 1e-7, "btran mismatch at {i}");
                }
            }
            assert_eq!(basis.eta_count(), 3);
            assert!(basis.eta_nnz() >= 3);
        }
    }

    #[test]
    fn replace_column_rejects_zero_pivot() {
        let a = random_sparse(&mut Pcg32::new(0x9b), 4);
        let lu = SparseLu::factor(&cols_of(&a), &mut never()).unwrap();
        let mut basis = FactorizedBasis::new(lu);
        assert_eq!(
            basis.replace_column(1, &[(0, 2.0), (2, 1.0)]).unwrap_err(),
            LuError::Singular
        );
    }
}
