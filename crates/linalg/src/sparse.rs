//! Compressed sparse row (CSR) matrices.
//!
//! The DC measurement Jacobian has at most four nonzeros per row (a flow
//! row touches two buses, a consumption row its bus neighborhood), so the
//! estimation stack's matrices are overwhelmingly sparse: at 300 buses the
//! dense Jacobian is ~336k entries of which ~1% are nonzero. [`CsrMatrix`]
//! stores only the nonzeros — row pointers, column indices and values —
//! and provides the kernels the estimator needs: construction from
//! triplets, sparse matrix–vector products (plain and transposed),
//! transpose, sparse×sparse products, row/column selection and diagonal
//! scaling. Column indices are kept sorted within each row, which the
//! sparse Cholesky side relies on.
//!
//! The dense [`Matrix`] API stays the reference oracle: every kernel here
//! is pinned against its dense counterpart by the randomized tests below
//! and the workspace's sparse-vs-dense property tests.

use crate::matrix::Matrix;
use crate::vector::Vector;

/// A sparse matrix in compressed sparse row form. Column indices are
/// strictly increasing within each row; explicit zeros are representable
/// (construction does not drop them) but never required.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i + 1]` indexes row `i`'s entries.
    row_ptr: Vec<usize>,
    /// Column of each stored entry, sorted within each row.
    col_idx: Vec<usize>,
    /// Value of each stored entry.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// An all-zero sparse matrix (no stored entries).
    pub fn zeros(rows: usize, cols: usize) -> CsrMatrix {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates are summed (so incidence-style accumulation works
    /// directly); entries within a row come out sorted by column.
    ///
    /// # Panics
    /// Panics if any triplet lies outside `rows × cols`.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> CsrMatrix {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r}, {c}) outside {rows}x{cols}");
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        // Bucket the triplets by row (stable counting sort).
        let mut bucket_col = vec![0usize; triplets.len()];
        let mut bucket_val = vec![0f64; triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            let slot = next[r];
            next[r] += 1;
            bucket_col[slot] = c;
            bucket_val[slot] = v;
        }
        // Sort each row by column and merge duplicates.
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        let mut entries: Vec<(usize, f64)> = Vec::new();
        for r in 0..rows {
            entries.clear();
            for k in counts[r]..counts[r + 1] {
                entries.push((bucket_col[k], bucket_val[k]));
            }
            entries.sort_unstable_by_key(|&(c, _)| c);
            let start = col_idx.len();
            for &(c, v) in &entries {
                if col_idx.len() > start && col_idx[col_idx.len() - 1] == c {
                    let last = values.len() - 1;
                    values[last] += v;
                } else {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Converts a dense matrix, storing exactly its nonzero entries.
    pub fn from_dense(a: &Matrix) -> CsrMatrix {
        let mut row_ptr = vec![0usize; a.num_rows() + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..a.num_rows() {
            for j in 0..a.num_cols() {
                let v = a[(i, j)];
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr[i + 1] = col_idx.len();
        }
        CsrMatrix { rows: a.num_rows(), cols: a.num_cols(), row_ptr, col_idx, values }
    }

    /// Expands to a dense matrix (the equivalence-test bridge).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] += self.values[k];
            }
        }
        m
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row `i` as parallel `(columns, values)` slices, columns ascending.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.rows, "row {i} out of range for {} rows", self.rows);
        let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// The stored value at `(i, j)` (zero when the entry is not stored).
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index ({i}, {j}) out of range");
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.num_cols()`.
    pub fn mul_vec(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        let mut y = Vector::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[i] = acc;
        }
        y
    }

    /// Transposed product `Aᵀ·x` in one pass (no transpose materialized).
    ///
    /// # Panics
    /// Panics if `x.len() != self.num_rows()`.
    pub fn mul_vec_transposed(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.rows, "mul_vec_transposed: dimension mismatch");
        let mut y = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                y[self.col_idx[k]] += self.values[k] * xi;
            }
        }
        y
    }

    /// The transpose, in CSR form (a counting sort over entries).
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        let mut next = row_ptr.clone();
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let c = self.col_idx[k];
                let slot = next[c];
                next[c] += 1;
                col_idx[slot] = i;
                values[slot] = self.values[k];
            }
        }
        // Row-major traversal makes each transposed row come out with
        // ascending columns automatically.
        CsrMatrix { rows: self.cols, cols: self.rows, row_ptr, col_idx, values }
    }

    /// Sparse×sparse product `A·B` with a dense accumulator per row
    /// (Gustavson's algorithm); output rows have sorted columns.
    ///
    /// # Panics
    /// Panics if `self.num_cols() != b.num_rows()`.
    pub fn mul_mat(&self, b: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.cols, b.rows, "mul_mat: dimension mismatch");
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut acc = vec![0f64; b.cols];
        let mut seen = vec![false; b.cols];
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let mid = self.col_idx[k];
                let v = self.values[k];
                for kb in b.row_ptr[mid]..b.row_ptr[mid + 1] {
                    let j = b.col_idx[kb];
                    if !seen[j] {
                        seen[j] = true;
                        touched.push(j);
                    }
                    acc[j] += v * b.values[kb];
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                col_idx.push(j);
                values.push(acc[j]);
                acc[j] = 0.0;
                seen[j] = false;
            }
            touched.clear();
            row_ptr[i + 1] = col_idx.len();
        }
        CsrMatrix { rows: self.rows, cols: b.cols, row_ptr, col_idx, values }
    }

    /// The submatrix of the given rows, in the given order (rows may
    /// repeat, mirroring the dense `select_rows`).
    ///
    /// # Panics
    /// Panics if any row index is out of range.
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut row_ptr = vec![0usize; rows.len() + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for (out, &r) in rows.iter().enumerate() {
            assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                col_idx.push(self.col_idx[k]);
                values.push(self.values[k]);
            }
            row_ptr[out + 1] = col_idx.len();
        }
        CsrMatrix { rows: rows.len(), cols: self.cols, row_ptr, col_idx, values }
    }

    /// The submatrix of the given columns, in the given order.
    ///
    /// # Panics
    /// Panics if any column index is out of range.
    pub fn select_cols(&self, cols: &[usize]) -> CsrMatrix {
        let mut map = vec![usize::MAX; self.cols];
        for (out, &c) in cols.iter().enumerate() {
            assert!(c < self.cols, "column {c} out of range for {} columns", self.cols);
            map[c] = out;
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut entries: Vec<(usize, f64)> = Vec::new();
        for i in 0..self.rows {
            entries.clear();
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let mapped = map[self.col_idx[k]];
                if mapped != usize::MAX {
                    entries.push((mapped, self.values[k]));
                }
            }
            entries.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &entries {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr[i + 1] = col_idx.len();
        }
        CsrMatrix { rows: self.rows, cols: cols.len(), row_ptr, col_idx, values }
    }

    /// `A·diag(w)`: scales column `j` by `w[j]`.
    ///
    /// # Panics
    /// Panics if `w.len() != self.num_cols()`.
    pub fn scale_cols(&self, w: &[f64]) -> CsrMatrix {
        assert_eq!(w.len(), self.cols, "scale_cols: one factor per column");
        let mut out = self.clone();
        for k in 0..out.values.len() {
            out.values[k] *= w[out.col_idx[k]];
        }
        out
    }

    /// `diag(w)·A`: scales row `i` by `w[i]`.
    ///
    /// # Panics
    /// Panics if `w.len() != self.num_rows()`.
    pub fn scale_rows(&self, w: &[f64]) -> CsrMatrix {
        assert_eq!(w.len(), self.rows, "scale_rows: one factor per row");
        let mut out = self.clone();
        for i in 0..self.rows {
            for k in out.row_ptr[i]..out.row_ptr[i + 1] {
                out.values[k] *= w[i];
            }
        }
        out
    }

    /// Largest absolute stored value (zero for an empty matrix) —
    /// mirrors the dense `norm_max` used for factorization tolerances.
    pub fn norm_max(&self) -> f64 {
        self.values.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Solves `L·x = b` for a lower-triangular matrix (entries strictly
    /// above the diagonal are ignored; the diagonal must be stored and
    /// nonzero). Returns `None` on a missing or zero diagonal.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `b.len()` mismatches.
    pub fn solve_lower_triangular(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "triangular solve needs a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let mut x = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = b[i];
            let mut diag = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if j < i {
                    acc -= self.values[k] * x[j];
                } else if j == i {
                    diag = self.values[k];
                }
            }
            if diag == 0.0 {
                return None;
            }
            x[i] = acc / diag;
        }
        Some(x)
    }

    /// Solves `U·x = b` for an upper-triangular matrix (entries strictly
    /// below the diagonal are ignored; the diagonal must be stored and
    /// nonzero). Returns `None` on a missing or zero diagonal.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `b.len()` mismatches.
    pub fn solve_upper_triangular(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "triangular solve needs a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let mut x = vec![0.0; self.rows];
        for i in (0..self.rows).rev() {
            let mut acc = b[i];
            let mut diag = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if j > i {
                    acc -= self.values[k] * x[j];
                } else if j == i {
                    diag = self.values[k];
                }
            }
            if diag == 0.0 {
                return None;
            }
            x[i] = acc / diag;
        }
        Some(x)
    }

    /// Returns a copy with column `j` replaced by the sparse entries
    /// `col` (as `(row, value)` pairs; exact zeros are dropped). The
    /// column-replacement primitive behind basis updates.
    ///
    /// # Panics
    /// Panics if `j` or any row index is out of range.
    pub fn replace_column(&self, j: usize, col: &[(usize, f64)]) -> CsrMatrix {
        assert!(j < self.cols, "column {j} out of range for {} columns", self.cols);
        let mut new_in_row = vec![0.0; self.rows];
        let mut has_new = vec![false; self.rows];
        for &(i, v) in col {
            assert!(i < self.rows, "row {i} out of range for {} rows", self.rows);
            if v != 0.0 {
                new_in_row[i] = v;
                has_new[i] = true;
            }
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            let mut inserted = false;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let c = self.col_idx[k];
                if c == j {
                    continue; // old entry dropped; new one inserted in order
                }
                if c > j && !inserted {
                    if has_new[i] {
                        col_idx.push(j);
                        values.push(new_in_row[i]);
                    }
                    inserted = true;
                }
                col_idx.push(c);
                values.push(self.values[k]);
            }
            if !inserted && has_new[i] {
                col_idx.push(j);
                values.push(new_in_row[i]);
            }
            row_ptr[i + 1] = col_idx.len();
        }
        CsrMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (2, 1, 4.0), (0, 2, 2.0), (2, 0, 3.0)])
    }

    #[test]
    fn triplets_sort_and_sum_duplicates() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 0, 5.0), (0, 1, 2.5)]);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 0), 5.0);
        assert_eq!(a.get(0, 1), 3.5);
        assert_eq!(a.get(1, 0), 0.0);
        let (cols, _) = a.row(0);
        assert_eq!(cols, &[0, 1]);
    }

    #[test]
    fn dense_round_trip() {
        let a = example();
        let d = a.to_dense();
        assert_eq!(d[(0, 2)], 2.0);
        assert_eq!(d[(2, 1)], 4.0);
        assert_eq!(CsrMatrix::from_dense(&d), a);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = example();
        let x = Vector::from(vec![1.0, 2.0, 3.0]);
        let y = a.mul_vec(&x);
        let yd = a.to_dense().mul_vec(&x);
        for i in 0..3 {
            assert_eq!(y[i], yd[i]);
        }
        let z = Vector::from(vec![2.0, -1.0, 0.5]);
        let t = a.mul_vec_transposed(&z);
        let td = a.to_dense().transpose().mul_vec(&z);
        for i in 0..3 {
            assert_eq!(t[i], td[i]);
        }
    }

    #[test]
    fn transpose_matches_dense() {
        let a = example();
        assert_eq!(a.transpose().to_dense(), a.to_dense().transpose());
        // Transposing twice is the identity.
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn sparse_product_matches_dense() {
        let a = example();
        let b = CsrMatrix::from_triplets(
            3,
            2,
            &[(0, 0, 1.0), (0, 1, -1.0), (1, 1, 2.0), (2, 0, 0.5)],
        );
        let c = a.mul_mat(&b);
        let cd = a.to_dense().mul_mat(&b.to_dense());
        for i in 0..3 {
            for j in 0..2 {
                assert!((c.get(i, j) - cd[(i, j)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn selection_matches_dense() {
        let a = example();
        let rows = a.select_rows(&[2, 0]);
        let rows_d = a.to_dense().select_rows(&[2, 0]);
        assert_eq!(rows.to_dense(), rows_d);
        let cols = a.select_cols(&[2, 1]);
        let cols_d = a.to_dense().select_cols(&[2, 1]);
        assert_eq!(cols.to_dense(), cols_d);
    }

    #[test]
    fn diagonal_scaling() {
        let a = example();
        let sc = a.scale_cols(&[2.0, 3.0, 4.0]);
        assert_eq!(sc.get(0, 2), 8.0);
        assert_eq!(sc.get(2, 1), 12.0);
        let sr = a.scale_rows(&[1.0, 5.0, 0.5]);
        assert_eq!(sr.get(2, 0), 1.5);
        assert_eq!(sr.get(0, 0), 1.0);
    }

    #[test]
    fn norm_max_ignores_sign() {
        let a = CsrMatrix::from_triplets(1, 2, &[(0, 0, -7.0), (0, 1, 3.0)]);
        assert_eq!(a.norm_max(), 7.0);
        assert_eq!(CsrMatrix::zeros(2, 2).norm_max(), 0.0);
    }

    #[test]
    fn empty_matrices_behave() {
        let a = CsrMatrix::zeros(0, 0);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.transpose(), a);
        let y = CsrMatrix::zeros(2, 3).mul_vec(&Vector::zeros(3));
        assert_eq!(y.len(), 2);
    }

    #[test]
    fn triangular_solves_round_trip() {
        // L = [2 0 0; 1 3 0; 0 -1 4], U = Lᵀ.
        let l = CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (1, 0, 1.0), (1, 1, 3.0), (2, 1, -1.0), (2, 2, 4.0)],
        );
        let x_true = vec![1.0, -2.0, 0.5];
        let b = l.mul_vec(&Vector::from(x_true.clone()));
        let x = l.solve_lower_triangular(b.as_slice()).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
        let u = l.transpose();
        let bu = u.mul_vec(&Vector::from(x_true.clone()));
        let xu = u.solve_upper_triangular(bu.as_slice()).unwrap();
        for i in 0..3 {
            assert!((xu[i] - x_true[i]).abs() < 1e-12);
        }
        // A zero diagonal is reported, not divided by.
        let sing = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        assert!(sing.solve_lower_triangular(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn replace_column_keeps_order_and_drops_zeros() {
        let a = example();
        let b = a.replace_column(1, &[(0, 5.0), (1, 0.0), (2, -1.0)]);
        assert_eq!(b.get(0, 1), 5.0);
        assert_eq!(b.get(1, 1), 0.0);
        assert_eq!(b.get(2, 1), -1.0);
        // Untouched columns survive, rows stay sorted.
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(b.get(0, 2), 2.0);
        let (cols, _) = b.row(0);
        assert_eq!(cols, &[0, 1, 2]);
        // Replacing with an empty column clears it.
        let c = a.replace_column(0, &[]);
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(2, 0), 0.0);
        assert_eq!(c.nnz(), 2);
    }
}
