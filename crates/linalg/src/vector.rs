//! Dense vectors of `f64` with the norms state estimation needs.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense column vector.
///
/// # Examples
///
/// ```
/// use sta_linalg::Vector;
///
/// let v = Vector::from(vec![3.0, 4.0]);
/// assert_eq!(v.norm2(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// A zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the entries.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the entries.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning its storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Dot product.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean (`l2`) norm — the residual norm in bad-data detection.
    pub fn norm2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Maximum absolute entry (`l∞` norm).
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Sum of absolute entries (`l1` norm).
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Entry-wise scaling by `k`.
    pub fn scaled(&self, k: f64) -> Vector {
        Vector { data: self.data.iter().map(|x| x * k).collect() }
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector { data: iter.into_iter().collect() }
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "add: dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect()
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "sub: dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect()
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.data.iter().map(|x| -x).collect()
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, k: f64) -> Vector {
        self.scaled(k)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        let v = Vector::from(vec![3.0, -4.0]);
        assert_eq!(v.norm2(), 5.0);
        assert_eq!(v.norm_inf(), 4.0);
        assert_eq!(v.norm1(), 7.0);
        assert_eq!(Vector::zeros(3).norm2(), 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!(&a + &b, Vector::from(vec![4.0, 7.0]));
        assert_eq!(&b - &a, Vector::from(vec![2.0, 3.0]));
        assert_eq!(-&a, Vector::from(vec![-1.0, -2.0]));
        assert_eq!(&a * 2.0, Vector::from(vec![2.0, 4.0]));
        assert_eq!(a.dot(&b), 13.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_mismatch_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }

    #[test]
    fn indexing_and_iteration() {
        let mut v = Vector::zeros(2);
        v[1] = 7.0;
        assert_eq!(v[1], 7.0);
        assert_eq!(v.iter().sum::<f64>(), 7.0);
        assert_eq!(v.clone().into_vec(), vec![0.0, 7.0]);
    }
}
