//! Dense row-major matrices of `f64`.

use crate::vector::Vector;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense matrix.
///
/// # Examples
///
/// ```
/// use sta_linalg::{Matrix, Vector};
///
/// let h = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0]]);
/// let x = Vector::from(vec![2.0, 3.0]);
/// assert_eq!(h.mul_vec(&x), Vector::from(vec![2.0, 5.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// A square matrix with `diag` on the diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds from row slices.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// A copy of row `i`.
    pub fn row(&self, i: usize) -> Vector {
        Vector::from(self.data[i * self.cols..(i + 1) * self.cols].to_vec())
    }

    /// A copy of column `j`.
    pub fn col(&self, j: usize) -> Vector {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics if `x.len() != self.num_cols()`.
    pub fn mul_vec(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        let xs = x.as_slice();
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .zip(xs)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions differ.
    pub fn mul_mat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "mul_mat: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Scales every entry by `k`.
    pub fn scaled(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// `self · diag(d)` — cheap right-scaling by a diagonal.
    ///
    /// # Panics
    /// Panics if `d.len() != self.num_cols()`.
    pub fn scale_cols(&self, d: &[f64]) -> Matrix {
        assert_eq!(d.len(), self.cols, "scale_cols: dimension mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] *= d[j];
            }
        }
        out
    }

    /// `diag(d) · self` — cheap left-scaling by a diagonal.
    ///
    /// # Panics
    /// Panics if `d.len() != self.num_rows()`.
    pub fn scale_rows(&self, d: &[f64]) -> Matrix {
        assert_eq!(d.len(), self.rows, "scale_rows: dimension mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] *= d[i];
            }
        }
        out
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Returns the sub-matrix keeping the given rows (in order).
    pub fn select_rows(&self, keep: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(keep.len(), self.cols);
        for (oi, &i) in keep.iter().enumerate() {
            for j in 0..self.cols {
                out[(oi, j)] = self[(i, j)];
            }
        }
        out
    }

    /// Returns the sub-matrix keeping the given columns (in order).
    pub fn select_cols(&self, keep: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, keep.len());
        for i in 0..self.rows {
            for (oj, &j) in keep.iter().enumerate() {
                out[(i, oj)] = self[(i, j)];
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, other: &Matrix) -> Matrix {
        self.mul_mat(other)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.mul_mat(&i), a);
        assert_eq!(i.mul_mat(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().num_rows(), 3);
    }

    #[test]
    fn mat_vec_and_mat_mat_agree() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let x = Vector::from(vec![5.0, 6.0]);
        let as_mat = Matrix::from_rows(&[vec![5.0], vec![6.0]]);
        let y = a.mul_vec(&x);
        let ym = a.mul_mat(&as_mat);
        assert_eq!(y[0], ym[(0, 0)]);
        assert_eq!(y[1], ym[(1, 0)]);
    }

    #[test]
    fn diagonal_scaling_matches_full_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let d = [2.0, 3.0];
        let full = Matrix::from_diag(&d);
        assert_eq!(a.scale_cols(&d), a.mul_mat(&full));
        assert_eq!(a.scale_rows(&d), full.mul_mat(&a));
    }

    #[test]
    fn row_col_selection() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let r = a.select_rows(&[2, 0]);
        assert_eq!(r, Matrix::from_rows(&[vec![7.0, 8.0, 9.0], vec![1.0, 2.0, 3.0]]));
        let c = a.select_cols(&[1]);
        assert_eq!(c, Matrix::from_rows(&[vec![2.0], vec![5.0], vec![8.0]]));
        assert_eq!(a.row(1), Vector::from(vec![4.0, 5.0, 6.0]));
        assert_eq!(a.col(0), Vector::from(vec![1.0, 4.0, 7.0]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_product_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mul_mat(&b);
    }
}
