//! Small deterministic PRNG (PCG-XSH-RR 64/32) for seeded test-system
//! generation and randomized tests.
//!
//! The workspace builds with no external registry dependencies, so the
//! `rand` crate is not available; this is the in-tree replacement. It is
//! **not** cryptographic — it exists to make synthetic grids and
//! randomized tests reproducible from a single `u64` seed. The sibling
//! `sta_smt::rng` module carries an identical generator because `sta-smt`
//! is dependency-free by design.
//!
//! # Examples
//!
//! ```
//! use sta_linalg::rng::Pcg32;
//!
//! let mut a = Pcg32::new(42);
//! let mut b = Pcg32::new(42);
//! assert_eq!(a.next_u32(), b.next_u32());
//! let x = a.uniform_f64(2.0, 25.0);
//! assert!((2.0..25.0).contains(&x));
//! ```

/// A PCG-XSH-RR 64/32 generator: 64-bit LCG state, 32-bit permuted output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;
const PCG_INIT_INC: u64 = 1442695040888963407;

impl Pcg32 {
    /// Seeds the generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: PCG_INIT_INC | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 raw bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 raw bits (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform draw from `0..n` (rejection-sampled, unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let draw = self.next_u64();
            if draw < zone {
                return (draw % n) as usize;
            }
        }
    }

    /// Uniform draw from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform draw from the closed integer range `lo..=hi`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as usize + 1;
        lo + self.below(span) as i64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u32() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u32> = {
            let mut r = Pcg32::new(7);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = Pcg32::new(7);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let c: Vec<u32> = {
            let mut r = Pcg32::new(8);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = Pcg32::new(1);
        for _ in 0..1000 {
            let x = r.range_usize(3, 9);
            assert!((3..9).contains(&x));
            let y = r.range_i64(-4, 4);
            assert!((-4..=4).contains(&y));
            let f = r.uniform_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = Pcg32::new(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
