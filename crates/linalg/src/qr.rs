//! QR decomposition by Householder reflections.
//!
//! The numerically robust route to least squares: solving `min ‖Ax − b‖`
//! via `QR` avoids squaring the condition number the way the normal
//! equations (`AᵀA`) do. The WLS estimator uses Cholesky on the gain
//! matrix for speed (and because a failed factorization doubles as an
//! unobservability signal); this factorization is the cross-check used in
//! tests and the right tool for ill-conditioned measurement sets.

use crate::matrix::Matrix;
use crate::vector::Vector;
use std::fmt;

/// Error returned when the matrix is rank-deficient to working precision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankDeficientError;

impl fmt::Display for RankDeficientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("matrix is rank deficient to working precision")
    }
}

impl std::error::Error for RankDeficientError {}

/// A QR factorization `A = Q·R` of an `m × n` matrix with `m ≥ n`.
///
/// # Examples
///
/// ```
/// use sta_linalg::{Matrix, Qr, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Overdetermined least squares: fit y = a + b·t.
/// let a = Matrix::from_rows(&[
///     vec![1.0, 0.0],
///     vec![1.0, 1.0],
///     vec![1.0, 2.0],
/// ]);
/// let y = Vector::from(vec![1.0, 3.0, 5.0]);
/// let x = Qr::factor(&a)?.solve_least_squares(&y)?;
/// assert!((x[0] - 1.0).abs() < 1e-12); // intercept
/// assert!((x[1] - 2.0).abs() < 1e-12); // slope
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors in the lower trapezoid, `R` on and above the
    /// diagonal.
    qr: Matrix,
    /// The scalar `β` of each Householder reflector `I − β·v·vᵀ`.
    betas: Vec<f64>,
}

impl Qr {
    /// Factors `a` (requires `m ≥ n`).
    ///
    /// # Errors
    /// Returns [`RankDeficientError`] if a diagonal of `R` underflows
    /// `1e-12` times the largest entry of `a`.
    ///
    /// # Panics
    /// Panics if `a` has fewer rows than columns.
    pub fn factor(a: &Matrix) -> Result<Qr, RankDeficientError> {
        let m = a.num_rows();
        let n = a.num_cols();
        assert!(m >= n, "QR needs m ≥ n");
        let tol = 1e-12 * a.norm_max().max(1.0);
        let mut qr = a.clone();
        let mut betas = Vec::with_capacity(n);
        for k in 0..n {
            // Householder vector for column k below the diagonal.
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm2.sqrt();
            if norm <= tol {
                return Err(RankDeficientError);
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = (v0, column k below the diagonal); β = 2 / ‖v‖².
            let vnorm2 = v0 * v0 + (norm2 - qr[(k, k)] * qr[(k, k)]);
            let beta = if vnorm2 <= tol * tol { 0.0 } else { 2.0 / vnorm2 };
            // Apply the reflector to the columns right of k (column k's
            // own image is known analytically: (α, 0, …, 0)).
            for j in k + 1..n {
                let mut dot = v0 * qr[(k, j)];
                for i in k + 1..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let scale = beta * dot;
                qr[(k, j)] -= scale * v0;
                for i in k + 1..m {
                    let upd = scale * qr[(i, k)];
                    qr[(i, j)] -= upd;
                }
            }
            // Write R's diagonal and stash the normalized Householder
            // vector v/v0 = (1, …) in the zeroed-out subdiagonal.
            qr[(k, k)] = alpha;
            if v0.abs() > 0.0 {
                for i in k + 1..m {
                    qr[(i, k)] /= v0;
                }
            }
            betas.push(beta * v0 * v0);
            if qr[(k, k)].abs() <= tol {
                return Err(RankDeficientError);
            }
        }
        Ok(Qr { qr, betas })
    }

    /// Applies `Qᵀ` to a copy of `b`.
    fn apply_qt(&self, b: &Vector) -> Vector {
        let m = self.qr.num_rows();
        let n = self.qr.num_cols();
        let mut y = b.clone();
        for k in 0..n {
            // v = (1, qr[k+1.., k]) scaled; β' = betas[k].
            let mut dot = y[k];
            for i in k + 1..m {
                dot += self.qr[(i, k)] * y[i];
            }
            let scale = self.betas[k] * dot;
            y[k] -= scale;
            for i in k + 1..m {
                let upd = scale * self.qr[(i, k)];
                y[i] -= upd;
            }
        }
        y
    }

    /// Solves the least-squares problem `min ‖A·x − b‖`.
    ///
    /// # Errors
    /// Mirrors [`Qr::factor`] (never fails once factored).
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the row count.
    pub fn solve_least_squares(&self, b: &Vector) -> Result<Vector, RankDeficientError> {
        let m = self.qr.num_rows();
        let n = self.qr.num_cols();
        assert_eq!(b.len(), m, "dimension mismatch");
        let y = self.apply_qt(b);
        // Back-substitute R·x = y[..n].
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            x[i] = acc / self.qr[(i, i)];
        }
        Ok(x)
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> Matrix {
        let n = self.qr.num_cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn square_solve_matches_direct() {
        let a = Matrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![-2.0, 4.0, -2.0],
            vec![1.0, -2.0, 4.0],
        ]);
        let b = Vector::from(vec![11.0, -16.0, 17.0]);
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        let back = a.mul_vec(&x);
        for i in 0..3 {
            assert_close(back[i], b[i], 1e-10);
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 9.0],
        ]);
        let b = Vector::from(vec![1.0, -1.0, 2.0, 0.5]);
        let qr_x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        // Normal equations via Cholesky.
        let ata = a.transpose().mul_mat(&a);
        let atb = a.transpose().mul_vec(&b);
        let ne_x = crate::Cholesky::factor(&ata).unwrap().solve(&atb).unwrap();
        for i in 0..2 {
            assert_close(qr_x[i], ne_x[i], 1e-9);
        }
    }

    #[test]
    fn r_is_upper_triangular_with_correct_gram() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0],
            vec![0.0, 3.0],
            vec![1.0, -1.0],
        ]);
        let qr = Qr::factor(&a).unwrap();
        let r = qr.r();
        // RᵀR = AᵀA (Q orthogonal).
        let rtr = r.transpose().mul_mat(&r);
        let ata = a.transpose().mul_mat(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert_close(rtr[(i, j)], ata[(i, j)], 1e-10);
            }
        }
    }

    #[test]
    fn rejects_rank_deficient() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![2.0, 4.0],
            vec![3.0, 6.0],
        ]);
        assert_eq!(Qr::factor(&a).unwrap_err(), RankDeficientError);
    }

    #[test]
    #[should_panic(expected = "m ≥ n")]
    fn underdetermined_panics() {
        let a = Matrix::zeros(2, 3);
        let _ = Qr::factor(&a);
    }

    #[test]
    fn residual_is_orthogonal_to_range() {
        // LS optimality: Aᵀ(b − A·x) = 0.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.5],
            vec![2.0, -1.0],
            vec![0.0, 3.0],
            vec![4.0, 4.0],
        ]);
        let b = Vector::from(vec![1.0, 2.0, 3.0, 4.0]);
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        let r = &b - &a.mul_vec(&x);
        let at_r = a.transpose().mul_vec(&r);
        for i in 0..2 {
            assert_close(at_r[i], 0.0, 1e-9);
        }
    }
}
