//! Dense linear algebra substrate for the state-estimation stack.
//!
//! The paper's estimator needs exactly the classical kit: dense
//! matrix/vector arithmetic ([`Matrix`], [`Vector`]), LU with partial
//! pivoting ([`Lu`]) for general square solves, and Cholesky ([`Cholesky`])
//! for the symmetric positive-definite WLS normal equations. Everything is
//! `f64`; the exact-arithmetic side of the project lives in `sta-smt`.
//!
//! # Examples
//!
//! Weighted least squares `x̂ = (HᵀWH)⁻¹HᵀWz` in three lines:
//!
//! ```
//! use sta_linalg::{Cholesky, Matrix, Vector};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let h = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
//! let w = [1.0, 1.0, 2.0];
//! let z = Vector::from(vec![1.0, 2.0, 3.1]);
//! let htw = h.transpose().scale_cols(&w);
//! let x = Cholesky::factor(&htw.mul_mat(&h))?.solve(&htw.mul_vec(&z))?;
//! assert!((x[0] - 1.04).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod cholesky;
pub mod lu;
pub mod qr;
pub mod matrix;
pub mod vector;

pub use cholesky::{Cholesky, NotPositiveDefiniteError};
pub use lu::{Lu, SingularMatrixError};
pub use qr::{Qr, RankDeficientError};
pub use matrix::Matrix;
pub use vector::Vector;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-10.0f64..10.0, n)
    }

    proptest! {
        /// LU solve then multiply round-trips for well-conditioned matrices.
        #[test]
        fn lu_roundtrip(rows in proptest::collection::vec(small_vec(4), 4),
                        b in small_vec(4)) {
            let mut a = Matrix::from_rows(&rows);
            // Diagonal dominance guarantees nonsingularity.
            for i in 0..4 {
                a[(i, i)] += 50.0;
            }
            let bv = Vector::from(b);
            let x = Lu::factor(&a).unwrap().solve(&bv).unwrap();
            let back = a.mul_vec(&x);
            for i in 0..4 {
                prop_assert!((back[i] - bv[i]).abs() < 1e-8);
            }
        }

        /// AᵀA + λI is SPD; Cholesky solves agree with LU solves.
        #[test]
        fn cholesky_matches_lu(rows in proptest::collection::vec(small_vec(3), 5),
                               b in small_vec(3)) {
            let a = Matrix::from_rows(&rows);
            let mut ata = a.transpose().mul_mat(&a);
            for i in 0..3 {
                ata[(i, i)] += 1.0;
            }
            let bv = Vector::from(b);
            let x1 = Cholesky::factor(&ata).unwrap().solve(&bv).unwrap();
            let x2 = Lu::factor(&ata).unwrap().solve(&bv).unwrap();
            for i in 0..3 {
                prop_assert!((x1[i] - x2[i]).abs() < 1e-7);
            }
        }

        /// (A·B)ᵀ = Bᵀ·Aᵀ.
        #[test]
        fn transpose_of_product(ra in proptest::collection::vec(small_vec(3), 2),
                                rb in proptest::collection::vec(small_vec(4), 3)) {
            let a = Matrix::from_rows(&ra);
            let b = Matrix::from_rows(&rb);
            let left = a.mul_mat(&b).transpose();
            let right = b.transpose().mul_mat(&a.transpose());
            for i in 0..left.num_rows() {
                for j in 0..left.num_cols() {
                    prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-9);
                }
            }
        }

        /// Triangle inequality for the l2 norm.
        #[test]
        fn norm_triangle(xa in small_vec(6), xb in small_vec(6)) {
            let a = Vector::from(xa);
            let b = Vector::from(xb);
            prop_assert!((&a + &b).norm2() <= a.norm2() + b.norm2() + 1e-9);
        }
    }
}
