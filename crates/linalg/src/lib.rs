//! Linear algebra substrate for the state-estimation stack.
//!
//! The paper's estimator needs exactly the classical kit: dense
//! matrix/vector arithmetic ([`Matrix`], [`Vector`]), LU with partial
//! pivoting ([`Lu`]) for general square solves, and Cholesky ([`Cholesky`])
//! for the symmetric positive-definite WLS normal equations. Everything is
//! `f64`; the exact-arithmetic side of the project lives in `sta-smt`.
//!
//! Large grids additionally get a sparse path: [`CsrMatrix`] (compressed
//! sparse rows, built from triplets) and [`SparseCholesky`] (up-looking
//! `LDLᵀ` with an approximate-minimum-degree ordering, split into
//! symbolic ([`SparseSymbolic`]) and numeric phases). The dense types are
//! the correctness oracle: sparse results must match them to within
//! round-off, and equivalence is pinned by property tests.
//!
//! # Examples
//!
//! Weighted least squares `x̂ = (HᵀWH)⁻¹HᵀWz` in three lines:
//!
//! ```
//! use sta_linalg::{Cholesky, Matrix, Vector};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let h = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
//! let w = [1.0, 1.0, 2.0];
//! let z = Vector::from(vec![1.0, 2.0, 3.1]);
//! let htw = h.transpose().scale_cols(&w);
//! let x = Cholesky::factor(&htw.mul_mat(&h))?.solve(&htw.mul_vec(&z))?;
//! assert!((x[0] - 1.04).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod cholesky;
pub mod lu;
pub mod qr;
pub mod matrix;
pub mod rng;
pub mod sparse;
pub mod sparse_cholesky;
pub mod sparse_lu;
pub mod vector;

pub use cholesky::{Cholesky, CholeskyError};
pub use lu::{Lu, SingularMatrixError};
pub use qr::{Qr, RankDeficientError};
pub use matrix::Matrix;
pub use sparse::CsrMatrix;
pub use sparse_cholesky::{amd_order, SparseCholesky, SparseSymbolic};
pub use sparse_lu::{FactorizedBasis, LuError, Scalar, SparseLu, VectorElem};
pub use vector::Vector;

#[cfg(test)]
mod randomized {
    use super::*;
    use rng::Pcg32;

    fn small_vec(rng: &mut Pcg32, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.uniform_f64(-10.0, 10.0)).collect()
    }

    fn small_matrix(rng: &mut Pcg32, rows: usize, cols: usize) -> Matrix {
        let data: Vec<Vec<f64>> =
            (0..rows).map(|_| small_vec(rng, cols)).collect();
        Matrix::from_rows(&data)
    }

    /// LU solve then multiply round-trips for well-conditioned matrices.
    #[test]
    fn lu_roundtrip() {
        let mut rng = Pcg32::new(0x1a1a);
        for _ in 0..64 {
            let mut a = small_matrix(&mut rng, 4, 4);
            // Diagonal dominance guarantees nonsingularity.
            for i in 0..4 {
                a[(i, i)] += 50.0;
            }
            let bv = Vector::from(small_vec(&mut rng, 4));
            let x = Lu::factor(&a).unwrap().solve(&bv).unwrap();
            let back = a.mul_vec(&x);
            for i in 0..4 {
                assert!((back[i] - bv[i]).abs() < 1e-8);
            }
        }
    }

    /// AᵀA + λI is SPD; Cholesky solves agree with LU solves.
    #[test]
    fn cholesky_matches_lu() {
        let mut rng = Pcg32::new(0x2b2b);
        for _ in 0..64 {
            let a = small_matrix(&mut rng, 5, 3);
            let mut ata = a.transpose().mul_mat(&a);
            for i in 0..3 {
                ata[(i, i)] += 1.0;
            }
            let bv = Vector::from(small_vec(&mut rng, 3));
            let x1 = Cholesky::factor(&ata).unwrap().solve(&bv).unwrap();
            let x2 = Lu::factor(&ata).unwrap().solve(&bv).unwrap();
            for i in 0..3 {
                assert!((x1[i] - x2[i]).abs() < 1e-7);
            }
        }
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_of_product() {
        let mut rng = Pcg32::new(0x3c3c);
        for _ in 0..64 {
            let a = small_matrix(&mut rng, 2, 3);
            let b = small_matrix(&mut rng, 3, 4);
            let left = a.mul_mat(&b).transpose();
            let right = b.transpose().mul_mat(&a.transpose());
            for i in 0..left.num_rows() {
                for j in 0..left.num_cols() {
                    assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-9);
                }
            }
        }
    }

    /// Triangle inequality for the l2 norm.
    #[test]
    fn norm_triangle() {
        let mut rng = Pcg32::new(0x4d4d);
        for _ in 0..128 {
            let a = Vector::from(small_vec(&mut rng, 6));
            let b = Vector::from(small_vec(&mut rng, 6));
            assert!((&a + &b).norm2() <= a.norm2() + b.norm2() + 1e-9);
        }
    }
}
