//! LU decomposition with partial pivoting.

use crate::matrix::Matrix;
use crate::vector::Vector;
use std::fmt;

/// Error returned when a matrix is singular to working precision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrixError;

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrixError {}

/// An LU factorization `P·A = L·U` of a square matrix.
///
/// # Examples
///
/// ```
/// use sta_linalg::{Lu, Matrix, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&Vector::from(vec![3.0, 5.0]))?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: U on and above the diagonal, L (unit-diagonal)
    /// strictly below.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for the determinant).
    sign: f64,
}

impl Lu {
    /// Factors `a`.
    ///
    /// # Errors
    /// Returns [`SingularMatrixError`] if a pivot underflows `1e-12` times
    /// the largest entry of the matrix.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn factor(a: &Matrix) -> Result<Lu, SingularMatrixError> {
        assert_eq!(a.num_rows(), a.num_cols(), "LU needs a square matrix");
        let n = a.num_rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let tol = 1e-12 * a.norm_max().max(1.0);
        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below row k.
            let mut piv = k;
            let mut best = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            if best <= tol {
                return Err(SingularMatrixError);
            }
            if piv != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(piv, j)];
                    lu[(piv, j)] = tmp;
                }
                perm.swap(k, piv);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in k + 1..n {
                    let upd = factor * lu[(k, j)];
                    lu[(i, j)] -= upd;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    /// Never fails once factored; the `Result` mirrors [`Lu::factor`] so
    /// call sites can chain with `?`.
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &Vector) -> Result<Vector, SingularMatrixError> {
        let n = self.lu.num_rows();
        assert_eq!(b.len(), n, "solve: dimension mismatch");
        // Forward substitution with permuted b (L has unit diagonal).
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// The determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.num_rows();
        (0..n).fold(self.sign, |acc, i| acc * self.lu[(i, i)])
    }

    /// The inverse of the factored matrix.
    ///
    /// # Errors
    /// Mirrors [`Lu::solve`].
    pub fn inverse(&self) -> Result<Matrix, SingularMatrixError> {
        let n = self.lu.num_rows();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    #[test]
    fn solves_small_system() {
        let a = Matrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![-2.0, 4.0, -2.0],
            vec![1.0, -2.0, 4.0],
        ]);
        let b = Vector::from(vec![11.0, -16.0, 17.0]);
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let back = a.mul_vec(&x);
        for i in 0..3 {
            assert_close(back[i], b[i]);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = Lu::factor(&a).unwrap().solve(&Vector::from(vec![2.0, 3.0])).unwrap();
        assert_close(x[0], 3.0);
        assert_close(x[1], 2.0);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(Lu::factor(&a).unwrap_err(), SingularMatrixError);
    }

    #[test]
    fn determinant_and_inverse() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![1.0, 2.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert_close(lu.det(), 6.0);
        let inv = lu.inverse().unwrap();
        let prod = a.mul_mat(&inv);
        for i in 0..2 {
            for j in 0..2 {
                assert_close(prod[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_close(Lu::factor(&a).unwrap().det(), -1.0);
    }
}
