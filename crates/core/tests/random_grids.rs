//! Property tests of the attack/defense stack over randomized grids.
//!
//! Deterministically seeded synthetic systems exercise structural
//! diversity the IEEE cases cannot: varying meshedness, degree spread,
//! and metering density. The invariants checked here are the load-bearing
//! ones: witnesses replay stealthily, protection is monotone, and the
//! cut-attack baseline never beats the SMT optimum.

use sta_core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta_core::cutattack;
use sta_core::validation;
use sta_grid::{synthetic, BusId, MeasurementId, TestSystem};
use sta_linalg::rng::Pcg32;

fn random_system(buses: usize, extra_lines: usize, seed: u64) -> TestSystem {
    let l = (buses - 1 + extra_lines).min(buses * (buses - 1) / 2);
    let grid = synthetic::generate(buses, l, seed).unwrap();
    TestSystem::fully_metered(format!("prop-{seed}"), grid)
}

/// Every feasible witness replays stealthily and moves its target.
#[test]
fn witnesses_replay_stealthily() {
    let mut rng = Pcg32::new(0xA001);
    for _ in 0..12 {
        let buses = rng.range_usize(6, 14);
        let extra = rng.range_usize(2, 6);
        let seed = rng.next_u64() % 40;
        let sys = random_system(buses, extra, seed);
        let target = 1 + (rng.range_usize(1, 14) % (buses - 1));
        let verifier = AttackVerifier::new(&sys);
        let model =
            AttackModel::new(buses).target(BusId(target), StateTarget::MustChange);
        if let Some(attack) = verifier.verify(&model).vector() {
            let replay = validation::replay_default(&sys, attack).unwrap();
            assert!(replay.is_stealthy(1e-6), "{replay}");
            assert!(replay.state_shifts[target].abs() > 1e-9);
        }
    }
}

/// Securing more buses never helps the attacker (monotonicity).
#[test]
fn protection_is_monotone() {
    let mut rng = Pcg32::new(0xA002);
    for _ in 0..12 {
        let buses = rng.range_usize(6, 12);
        let extra = rng.range_usize(2, 5);
        let seed = rng.next_u64() % 30;
        let sys = random_system(buses, extra, seed);
        let verifier = AttackVerifier::new(&sys);
        let target = BusId(buses / 2);
        let a = BusId(rng.below(buses));
        let b = BusId(rng.below(buses));
        let small = AttackModel::new(buses)
            .target(target, StateTarget::MustChange)
            .secure_buses(&[a]);
        let big = AttackModel::new(buses)
            .target(target, StateTarget::MustChange)
            .secure_buses(&[a, b]);
        // feasible(big) → feasible(small): adding protection can only
        // remove attacks.
        if verifier.verify(&big).is_feasible() {
            assert!(verifier.verify(&small).is_feasible());
        }
    }
}

/// The greedy cut attack is a valid attack, so the SMT minimal
/// measurement count never exceeds its cost.
#[test]
fn cut_bound_holds() {
    let mut rng = Pcg32::new(0xA003);
    for _ in 0..12 {
        let buses = rng.range_usize(6, 12);
        let extra = rng.range_usize(2, 5);
        let seed = rng.next_u64() % 30;
        let sys = random_system(buses, extra, seed);
        let target = BusId(buses / 2);
        if let Some(cut) = cutattack::best_cut_attack(&sys, target, 0.1) {
            let verifier = AttackVerifier::new(&sys);
            let model = AttackModel::new(buses)
                .target(target, StateTarget::MustChange)
                .max_altered_measurements(cut.cost);
            assert!(
                verifier.verify(&model).is_feasible(),
                "cut with {} alterations exists but SMT says infeasible",
                cut.cost
            );
        }
    }
}

/// Resource monotonicity: if an attack fits budget k, it fits k+1.
#[test]
fn budget_monotonicity() {
    let mut rng = Pcg32::new(0xA004);
    for _ in 0..12 {
        let buses = rng.range_usize(6, 12);
        let extra = rng.range_usize(2, 5);
        let seed = rng.next_u64() % 30;
        let k = rng.range_usize(3, 10);
        let sys = random_system(buses, extra, seed);
        let verifier = AttackVerifier::new(&sys);
        let target = BusId(buses / 2);
        let tight = AttackModel::new(buses)
            .target(target, StateTarget::MustChange)
            .max_altered_measurements(k);
        let loose = AttackModel::new(buses)
            .target(target, StateTarget::MustChange)
            .max_altered_measurements(k + 1);
        if verifier.verify(&tight).is_feasible() {
            assert!(verifier.verify(&loose).is_feasible());
        }
    }
}

/// Untaken measurements never appear in a witness.
#[test]
fn untaken_meters_never_altered() {
    let mut rng = Pcg32::new(0xA005);
    for _ in 0..12 {
        let buses = rng.range_usize(6, 12);
        let extra = rng.range_usize(2, 5);
        let seed = rng.next_u64() % 30;
        let drop_stride = rng.range_usize(2, 5);
        let mut sys = random_system(buses, extra, seed);
        // Drop a deterministic subset of meters.
        for m in (0..sys.measurements.len()).step_by(drop_stride) {
            sys.measurements.set_taken(MeasurementId(m), false);
        }
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(buses);
        if let Some(v) = verifier.verify(&model).vector() {
            for alt in &v.alterations {
                assert!(sys.measurements.is_taken(alt.measurement));
            }
        }
    }
}
