//! Property tests of the attack/defense stack over randomized grids.
//!
//! Deterministically seeded synthetic systems exercise structural
//! diversity the IEEE cases cannot: varying meshedness, degree spread,
//! and metering density. The invariants checked here are the load-bearing
//! ones: witnesses replay stealthily, protection is monotone, and the
//! cut-attack baseline never beats the SMT optimum.

use proptest::prelude::*;
use sta_core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta_core::cutattack;
use sta_core::validation;
use sta_grid::{synthetic, BusId, MeasurementId, TestSystem};

fn random_system(buses: usize, extra_lines: usize, seed: u64) -> TestSystem {
    let l = (buses - 1 + extra_lines).min(buses * (buses - 1) / 2);
    let grid = synthetic::generate(buses, l, seed);
    TestSystem::fully_metered(format!("prop-{seed}"), grid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every feasible witness replays stealthily and moves its target.
    #[test]
    fn witnesses_replay_stealthily(
        buses in 6usize..14,
        extra in 2usize..6,
        seed in 0u64..40,
        target_raw in 1usize..14,
    ) {
        let sys = random_system(buses, extra, seed);
        let target = 1 + (target_raw % (buses - 1));
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(buses)
            .target(BusId(target), StateTarget::MustChange);
        if let Some(attack) = verifier.verify(&model).vector() {
            let replay = validation::replay_default(&sys, attack).unwrap();
            prop_assert!(replay.is_stealthy(1e-6), "{replay}");
            prop_assert!(replay.state_shifts[target].abs() > 1e-9);
        }
    }

    /// Securing more buses never helps the attacker (monotonicity).
    #[test]
    fn protection_is_monotone(
        buses in 6usize..12,
        extra in 2usize..5,
        seed in 0u64..30,
        secure_a in 0usize..12,
        secure_b in 0usize..12,
    ) {
        let sys = random_system(buses, extra, seed);
        let verifier = AttackVerifier::new(&sys);
        let target = BusId(buses / 2);
        let a = BusId(secure_a % buses);
        let b = BusId(secure_b % buses);
        let small = AttackModel::new(buses)
            .target(target, StateTarget::MustChange)
            .secure_buses(&[a]);
        let big = AttackModel::new(buses)
            .target(target, StateTarget::MustChange)
            .secure_buses(&[a, b]);
        // feasible(big) → feasible(small): adding protection can only
        // remove attacks.
        if verifier.verify(&big).is_feasible() {
            prop_assert!(verifier.verify(&small).is_feasible());
        }
    }

    /// The greedy cut attack is a valid attack, so the SMT minimal
    /// measurement count never exceeds its cost.
    #[test]
    fn cut_bound_holds(
        buses in 6usize..12,
        extra in 2usize..5,
        seed in 0u64..30,
    ) {
        let sys = random_system(buses, extra, seed);
        let target = BusId(buses / 2);
        if let Some(cut) = cutattack::best_cut_attack(&sys, target, 0.1) {
            let verifier = AttackVerifier::new(&sys);
            let model = AttackModel::new(buses)
                .target(target, StateTarget::MustChange)
                .max_altered_measurements(cut.cost);
            prop_assert!(
                verifier.verify(&model).is_feasible(),
                "cut with {} alterations exists but SMT says infeasible",
                cut.cost
            );
        }
    }

    /// Resource monotonicity: if an attack fits budget k, it fits k+1.
    #[test]
    fn budget_monotonicity(
        buses in 6usize..12,
        extra in 2usize..5,
        seed in 0u64..30,
        k in 3usize..10,
    ) {
        let sys = random_system(buses, extra, seed);
        let verifier = AttackVerifier::new(&sys);
        let target = BusId(buses / 2);
        let tight = AttackModel::new(buses)
            .target(target, StateTarget::MustChange)
            .max_altered_measurements(k);
        let loose = AttackModel::new(buses)
            .target(target, StateTarget::MustChange)
            .max_altered_measurements(k + 1);
        if verifier.verify(&tight).is_feasible() {
            prop_assert!(verifier.verify(&loose).is_feasible());
        }
    }

    /// Untaken measurements never appear in a witness.
    #[test]
    fn untaken_meters_never_altered(
        buses in 6usize..12,
        extra in 2usize..5,
        seed in 0u64..30,
        drop_stride in 2usize..5,
    ) {
        let mut sys = random_system(buses, extra, seed);
        // Drop a deterministic subset of meters.
        for m in (0..sys.measurements.len()).step_by(drop_stride) {
            sys.measurements.set_taken(MeasurementId(m), false);
        }
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(buses);
        if let Some(v) = verifier.verify(&model).vector() {
            for alt in &v.alterations {
                prop_assert!(sys.measurements.is_taken(alt.measurement));
            }
        }
    }
}
