//! Regression tests for the paper's §III-I and §IV-E case studies on the
//! IEEE 14-bus system.
//!
//! The case-study configuration uses Table III's taken set but not its
//! secured column (see `ieee14::system_unsecured` docs), with the
//! admittances of lines 3, 7 and 17 unknown to the attacker.

use sta_core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta_core::synthesis::{SynthesisConfig, Synthesizer};
use sta_core::validation;
use sta_grid::{ieee14, BusId, LineId, MeasurementId};

/// The §III-I example configuration: unsecured Table III taken set.
fn example_system() -> sta_grid::TestSystem {
    ieee14::system_unsecured()
}

/// Objective 1's attack model: states 9 and 10 corrupted by different
/// amounts, ≤ `t_cz` measurements in ≤ `t_cb` substations.
fn objective1(t_cz: usize, t_cb: usize, different: bool) -> AttackModel {
    let mut m = AttackModel::new(14)
        .unknown_lines(20, &ieee14::EXAMPLE_UNKNOWN_LINES.map(|l| l - 1))
        .target(BusId(8), StateTarget::MustChange)
        .target(BusId(9), StateTarget::MustChange)
        .max_altered_measurements(t_cz)
        .max_compromised_buses(t_cb);
    if different {
        m = m.require_different_change(BusId(8), BusId(9));
    }
    m
}

#[test]
fn objective1_feasible_at_paper_budget() {
    let sys = example_system();
    let verifier = AttackVerifier::new(&sys);
    let attack = verifier.verify(&objective1(16, 7, true)).expect_feasible();
    assert!(attack.num_alterations() <= 16);
    assert!(attack.compromised_buses.len() <= 7);
    // States 9 and 10 (indices 8, 9) moved by different amounts.
    let d9 = attack.state_changes[8];
    let d10 = attack.state_changes[9];
    assert!(d9.abs() > 1e-9 && d10.abs() > 1e-9);
    assert!((d9 - d10).abs() > 1e-9);
    // End-to-end: the witness is stealthy against the real estimator.
    let replay = validation::replay_default(&sys, &attack).unwrap();
    assert!(replay.is_stealthy(1e-6), "{replay}");
}

#[test]
fn objective1_equal_change_needs_fewer_resources() {
    let sys = example_system();
    let verifier = AttackVerifier::new(&sys);
    // Allowing equal changes, the paper finds a 15-measurement/6-bus
    // attack.
    let attack = verifier.verify(&objective1(15, 6, false)).expect_feasible();
    assert!(attack.num_alterations() <= 15);
    assert!(attack.compromised_buses.len() <= 6);
    let replay = validation::replay_default(&sys, &attack).unwrap();
    assert!(replay.is_stealthy(1e-6), "{replay}");
}

#[test]
fn objective1_has_sharp_feasibility_thresholds() {
    // The paper reports the transition at 16 measurements / 7 buses; with
    // full accessibility (Table III's accessibility column is not
    // published) our model's exact minima are 13 measurements and 6
    // buses. The *shape* — a sharp sat/unsat budget threshold, with the
    // bus budget binding independently of the measurement budget — is the
    // reproduced result (see EXPERIMENTS.md).
    let sys = example_system();
    let verifier = AttackVerifier::new(&sys);
    assert!(verifier.verify(&objective1(13, 6, true)).is_feasible());
    assert!(
        !verifier.verify(&objective1(12, 14, true)).is_feasible(),
        "12 measurements must not suffice at any bus budget"
    );
    assert!(
        !verifier.verify(&objective1(54, 5, true)).is_feasible(),
        "5 buses must not suffice at any measurement budget"
    );
}

#[test]
fn objective1_states_9_10_cannot_be_attacked_alone() {
    // "along with 9 and 10, some other states are also required to be
    // corrupted; only states 9 and 10 cannot be attacked alone."
    let sys = example_system();
    let verifier = AttackVerifier::new(&sys);
    let mut m = AttackModel::new(14)
        .unknown_lines(20, &ieee14::EXAMPLE_UNKNOWN_LINES.map(|l| l - 1))
        .target(BusId(8), StateTarget::MustChange)
        .target(BusId(9), StateTarget::MustChange);
    for j in 0..14 {
        if j != 8 && j != 9 {
            m = m.target(BusId(j), StateTarget::MustNotChange);
        }
    }
    assert!(!verifier.verify(&m).is_feasible());
}

/// Objective 2's attack model: state 12 only, nothing else affected.
fn objective2() -> AttackModel {
    let mut m = AttackModel::new(14)
        .unknown_lines(20, &ieee14::EXAMPLE_UNKNOWN_LINES.map(|l| l - 1))
        .target(BusId(11), StateTarget::MustChange);
    for j in 0..14 {
        if j != 11 {
            m = m.target(BusId(j), StateTarget::MustNotChange);
        }
    }
    m
}

#[test]
fn objective2_matches_paper_measurement_set() {
    let sys = example_system();
    let verifier = AttackVerifier::new(&sys);
    let attack = verifier.verify(&objective2()).expect_feasible();
    let mut meters: Vec<usize> =
        attack.alterations.iter().map(|a| a.measurement.0 + 1).collect();
    meters.sort_unstable();
    // The paper: measurements 12, 32, 39, 46 and 53.
    assert_eq!(meters, vec![12, 32, 39, 46, 53]);
    let replay = validation::replay_default(&sys, &attack).unwrap();
    assert!(replay.is_stealthy(1e-6), "{replay}");
    // Only state 12 (index 11) shifted.
    for (j, shift) in replay.state_shifts.iter().enumerate() {
        if j == 11 {
            assert!(shift.abs() > 1e-9);
        } else {
            assert!(shift.abs() < 1e-6, "state {} moved {shift}", j + 1);
        }
    }
}

#[test]
fn objective2_blocked_by_securing_measurement_46() {
    let sys = example_system();
    let verifier = AttackVerifier::new(&sys);
    let model = objective2().secure_measurement(MeasurementId(45));
    assert!(!verifier.verify(&model).is_feasible());
}

#[test]
fn objective2_revived_by_topology_poisoning() {
    // With measurement 46 secured, excluding line 13 re-enables the
    // attack; the paper reports measurements 12, 13, 32, 33, 39 and 53.
    let sys = example_system();
    let verifier = AttackVerifier::new(&sys);
    let model = objective2()
        .secure_measurement(MeasurementId(45))
        .with_topology_attack();
    let attack = verifier.verify(&model).expect_feasible();
    assert_eq!(attack.excluded_lines, vec![LineId(12)]); // line 13
    assert!(attack.included_lines.is_empty());
    let mut meters: Vec<usize> =
        attack.alterations.iter().map(|a| a.measurement.0 + 1).collect();
    meters.sort_unstable();
    assert_eq!(meters, vec![12, 13, 32, 33, 39, 53]);
    // End-to-end under the poisoned topology.
    let replay = validation::replay_default(&sys, &attack).unwrap();
    assert!(replay.is_stealthy(1e-6), "{replay}");
}

// --- §IV-E synthesis scenarios -----------------------------------------

/// The §IV-E candidate convention: all three published architectures
/// include bus 1 (the declared reference), so scenarios force it.
fn scenario_config(budget: usize) -> SynthesisConfig {
    SynthesisConfig::with_budget(budget).with_reference_secured()
}

#[test]
fn scenario1_four_buses_suffice_for_limited_attacker() {
    // Attacker: admittances of lines 3 and 17 unknown, ≤ 12 measurements,
    // any state as target. The paper synthesizes {1, 6, 7, 10}.
    let sys = example_system();
    let synth = Synthesizer::new(&sys);
    let attacker = AttackModel::new(14)
        .unknown_lines(20, &[2, 16])
        .max_altered_measurements(12);
    let outcome = synth.synthesize(&attacker, &scenario_config(4));
    let arch = outcome.architecture().expect("4 buses suffice");
    assert!(arch.secured_buses.len() <= 4);
    assert!(arch.secured_buses.contains(&BusId(0)), "reference secured");
    // Independent re-verification.
    let verifier = AttackVerifier::new(&sys);
    let hardened = attacker.clone().secure_buses(&arch.secured_buses);
    assert!(!verifier.verify(&hardened).is_feasible());
    // The reference bus alone is not enough.
    assert!(!synth.synthesize(&attacker, &scenario_config(1)).is_solution());
}

#[test]
fn scenario2_full_knowledge_needs_five_buses() {
    // Full knowledge, unlimited resources: no 4-bus architecture exists,
    // 5 buses suffice — the paper's 4 → 5 transition, reproduced exactly.
    let sys = example_system();
    let synth = Synthesizer::new(&sys);
    let attacker = AttackModel::new(14);
    let small = synth.synthesize(&attacker, &scenario_config(4));
    assert!(!small.is_solution(), "scenario 2: 4 buses must not suffice");
    let larger = synth.synthesize(&attacker, &scenario_config(5));
    let arch = larger.architecture().expect("5 buses suffice");
    assert_eq!(arch.secured_buses.len(), 5);
    let verifier = AttackVerifier::new(&sys);
    let hardened = attacker.clone().secure_buses(&arch.secured_buses);
    assert!(!verifier.verify(&hardened).is_feasible());
}

#[test]
fn scenario3_architecture_resists_topology_poisoning() {
    // Full knowledge + topology poisoning (lines 5 and 13 vulnerable).
    // The paper reports a 5 → 6 transition; under full accessibility our
    // exact minimum stays at 5 (the same architecture's secured meters
    // already pin every state even with line 5 or 13 excluded — see
    // EXPERIMENTS.md). The reproduced shape: 4 buses fail, a solution
    // exists, and it independently resists the topology-armed attacker.
    let sys = example_system();
    let synth = Synthesizer::new(&sys);
    let attacker = AttackModel::new(14).with_topology_attack();
    assert!(
        !synth.synthesize(&attacker, &scenario_config(4)).is_solution(),
        "scenario 3: 4 buses must not suffice"
    );
    let outcome = synth.synthesize(&attacker, &scenario_config(5));
    let arch = outcome.architecture().expect("architecture exists");
    let verifier = AttackVerifier::new(&sys);
    let hardened = attacker.clone().secure_buses(&arch.secured_buses);
    assert!(!verifier.verify(&hardened).is_feasible());
    // Sanity: the same budget *without* those buses leaves topology
    // attacks open (the unprotected grid is attackable).
    assert!(verifier.verify(&attacker).is_feasible());
}
