//! Cut-based attack construction — the classical combinatorial baseline.
//!
//! The paper's §III-G recalls the known result that "it is possible to
//! launch a UFDI attack … if the attacker can form a cut that divides the
//! grid into two disjoint islands": shift the phase-angle estimate of one
//! island uniformly by `c` and adjust exactly the meters on the cut (the
//! island-internal flows see no relative change). This module implements
//! that construction directly — a BFS-grown island search plus explicit
//! alteration synthesis — giving an *independent* attack generator to
//! cross-validate the SMT verifier against: every cut attack must verify
//! as feasible, and the SMT minimum can never exceed the best cut's cost.
//!
//! The uniform-shift structure also shows why the paper's Eq. 26
//! (`Δθ_a ≠ Δθ_b`) matters: cut attacks corrupt many states but leave
//! their *relative* angles — and hence island-internal flows — untouched.

use crate::attack::{Alteration, AttackVector};
use sta_grid::{BusId, LineId, MeasurementConfig, MeasurementId, TestSystem};
use std::collections::BTreeSet;

/// A cut attack: shift every bus in `island` by `shift`.
#[derive(Debug, Clone)]
pub struct CutAttack {
    /// Buses whose state estimates move (the island).
    pub island: Vec<BusId>,
    /// Lines crossing the cut.
    pub cut_lines: Vec<LineId>,
    /// The uniform phase shift applied to the island.
    pub shift: f64,
    /// Number of measurement alterations the attack needs.
    pub cost: usize,
}

impl CutAttack {
    /// Materializes the concrete attack vector (deltas per meter).
    pub fn to_vector(&self, sys: &TestSystem) -> AttackVector {
        let b = sys.grid.num_buses();
        let l = sys.grid.num_lines();
        let in_island = {
            let mut v = vec![false; b];
            for bus in &self.island {
                v[bus.0] = true;
            }
            v
        };
        let mut state_changes = vec![0.0; b];
        for bus in &self.island {
            state_changes[bus.0] = self.shift;
        }
        // Flow deltas: only cut lines change; sign depends on which end
        // is inside.
        let mut flow_delta = vec![0.0f64; l];
        for &line_id in &self.cut_lines {
            let line = sys.grid.line(line_id);
            let df = if in_island[line.from.0] { self.shift } else { 0.0 };
            let dt = if in_island[line.to.0] { self.shift } else { 0.0 };
            flow_delta[line_id.0] = line.admittance * (df - dt);
        }
        let mut alterations = Vec::new();
        for i in 0..l {
            if flow_delta[i] == 0.0 {
                continue;
            }
            if sys.measurements.is_taken(MeasurementId(i)) {
                alterations.push(Alteration {
                    measurement: MeasurementId(i),
                    delta: flow_delta[i],
                });
            }
            if sys.measurements.is_taken(MeasurementId(l + i)) {
                alterations.push(Alteration {
                    measurement: MeasurementId(l + i),
                    delta: -flow_delta[i],
                });
            }
        }
        for j in 0..b {
            let mut dpb = 0.0;
            for (li, _) in sys.grid.incoming(BusId(j)) {
                dpb += flow_delta[li.0];
            }
            for (li, _) in sys.grid.outgoing(BusId(j)) {
                dpb -= flow_delta[li.0];
            }
            if dpb != 0.0 && sys.measurements.is_taken(MeasurementId(2 * l + j)) {
                alterations.push(Alteration {
                    measurement: MeasurementId(2 * l + j),
                    delta: dpb,
                });
            }
        }
        let mut buses: Vec<BusId> = alterations
            .iter()
            .map(|a| MeasurementConfig::bus_of(&sys.grid, a.measurement))
            .collect();
        buses.sort_unstable();
        buses.dedup();
        AttackVector {
            alterations,
            compromised_buses: buses,
            state_changes,
            excluded_lines: Vec::new(),
            included_lines: Vec::new(),
        }
    }
}

/// Counts the meters an island shift must alter, or `None` if one of
/// them is secured/inaccessible (the cut is unusable).
fn cut_cost(sys: &TestSystem, in_island: &[bool]) -> Option<usize> {
    let l = sys.grid.num_lines();
    let alterable = |m: usize| {
        let id = MeasurementId(m);
        !sys.measurements.is_taken(id)
            || (!sys.measurements.is_secured(id) && sys.measurements.is_accessible(id))
    };
    let counts_if_taken = |m: usize| usize::from(sys.measurements.is_taken(MeasurementId(m)));
    let mut cost = 0usize;
    let mut touched_bus = vec![false; sys.grid.num_buses()];
    for (i, line) in sys.grid.lines().iter().enumerate() {
        if !sys.topology.is_in_service(LineId(i)) {
            continue;
        }
        let crossing = in_island[line.from.0] != in_island[line.to.0];
        if !crossing {
            continue;
        }
        if !alterable(i) || !alterable(l + i) {
            return None;
        }
        cost += counts_if_taken(i) + counts_if_taken(l + i);
        touched_bus[line.from.0] = true;
        touched_bus[line.to.0] = true;
    }
    for (j, &touched) in touched_bus.iter().enumerate() {
        if !touched {
            continue;
        }
        let m = 2 * l + j;
        if !alterable(m) {
            return None;
        }
        cost += counts_if_taken(m);
    }
    Some(cost)
}

/// Finds the cheapest *connected* island containing `target` (and not the
/// reference bus) by greedy BFS growth: start from `{target}` and
/// repeatedly absorb the neighboring bus that most reduces the cut cost,
/// keeping the best island seen. A classical heuristic — optimal cuts are
/// NP-hard, which is the paper's point about needing the SMT model.
///
/// Returns `None` when no usable cut exists (e.g. protection blocks every
/// island around the target).
pub fn best_cut_attack(sys: &TestSystem, target: BusId, shift: f64) -> Option<CutAttack> {
    let b = sys.grid.num_buses();
    if target == sys.reference_bus {
        return None;
    }
    let mut in_island = vec![false; b];
    in_island[target.0] = true;
    let mut best: Option<(usize, Vec<bool>)> = cut_cost(sys, &in_island)
        .map(|c| (c, in_island.clone()));
    // Greedy absorption, at most b−2 rounds (never absorb the reference).
    for _ in 0..b.saturating_sub(2) {
        // Candidate neighbors of the island.
        let mut candidates: BTreeSet<usize> = BTreeSet::new();
        for (i, line) in sys.grid.lines().iter().enumerate() {
            if !sys.topology.is_in_service(LineId(i)) {
                continue;
            }
            let (f, t) = (line.from.0, line.to.0);
            if in_island[f] != in_island[t] {
                let outside = if in_island[f] { t } else { f };
                if outside != sys.reference_bus.0 {
                    candidates.insert(outside);
                }
            }
        }
        // Pick the absorption with the lowest resulting cost.
        let mut round_best: Option<(usize, usize)> = None; // (cost, bus)
        for &cand in &candidates {
            in_island[cand] = true;
            if let Some(c) = cut_cost(sys, &in_island) {
                if round_best.map_or(true, |(bc, _)| c < bc) {
                    round_best = Some((c, cand));
                }
            }
            in_island[cand] = false;
        }
        let Some((cost, bus)) = round_best else { break };
        in_island[bus] = true;
        if best.as_ref().map_or(true, |(bc, _)| cost < *bc) {
            best = Some((cost, in_island.clone()));
        }
    }
    let (cost, island_mask) = best?;
    if cost == 0 {
        // A zero-cost "attack" alters nothing (completely unmetered cut);
        // it would not be a meaningful vector.
        return None;
    }
    let island: Vec<BusId> = island_mask
        .iter()
        .enumerate()
        .filter(|(_, &v)| v)
        .map(|(j, _)| BusId(j))
        .collect();
    let cut_lines: Vec<LineId> = sys
        .grid
        .lines()
        .iter()
        .enumerate()
        .filter(|(i, line)| {
            sys.topology.is_in_service(LineId(*i))
                && island_mask[line.from.0] != island_mask[line.to.0]
        })
        .map(|(i, _)| LineId(i))
        .collect();
    Some(CutAttack { island, cut_lines, shift, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::ThreatAnalyzer;
    use crate::validation;
    use sta_grid::ieee14;

    #[test]
    fn cut_attack_exists_and_replays_stealthily() {
        let sys = ieee14::system_unsecured();
        for target in 1..14 {
            let cut = best_cut_attack(&sys, BusId(target), 0.1)
                .unwrap_or_else(|| panic!("cut for state {}", target + 1));
            let vector = cut.to_vector(&sys);
            assert_eq!(vector.num_alterations(), cut.cost);
            let replay = validation::replay_default(&sys, &vector).unwrap();
            assert!(replay.is_stealthy(1e-6), "state {}: {replay}", target + 1);
            assert!(replay.state_shifts[target].abs() > 0.05);
        }
    }

    #[test]
    fn island_members_shift_together() {
        let sys = ieee14::system_unsecured();
        let cut = best_cut_attack(&sys, BusId(11), 0.2).unwrap();
        let vector = cut.to_vector(&sys);
        let replay = validation::replay_default(&sys, &vector).unwrap();
        for bus in &cut.island {
            assert!(
                (replay.state_shifts[bus.0] - 0.2).abs() < 1e-6,
                "bus {} shifted {}",
                bus.0 + 1,
                replay.state_shifts[bus.0]
            );
        }
        // Non-island states do not move.
        for j in 0..14 {
            if !cut.island.contains(&BusId(j)) {
                assert!(replay.state_shifts[j].abs() < 1e-9);
            }
        }
    }

    #[test]
    fn smt_minimum_never_exceeds_cut_cost() {
        // The SMT model searches all attacks; the greedy cut is one of
        // them, so min_measurements ≤ cut cost for every state.
        let sys = ieee14::system_unsecured();
        let analyzer = ThreatAnalyzer::new(&sys);
        for target in 1..14 {
            let cut = best_cut_attack(&sys, BusId(target), 0.1).unwrap();
            let threat = analyzer.assess_state(BusId(target));
            let smt_min = threat.min_measurements.expect("attackable");
            assert!(
                smt_min <= cut.cost,
                "state {}: smt {} > cut {}",
                target + 1,
                smt_min,
                cut.cost
            );
        }
    }

    #[test]
    fn protection_can_eliminate_all_cuts() {
        // Secure every bus: no usable cut remains anywhere.
        let sys = ieee14::system_unsecured();
        let all: Vec<BusId> = (0..14).map(BusId).collect();
        let mut fortified = sys.clone();
        fortified.measurements =
            sys.measurements.with_secured_buses(&sys.grid, &all);
        for target in 1..14 {
            assert!(best_cut_attack(&fortified, BusId(target), 0.1).is_none());
        }
    }

    #[test]
    fn reference_bus_has_no_cut() {
        let sys = ieee14::system_unsecured();
        assert!(best_cut_attack(&sys, BusId(0), 0.1).is_none());
    }
}
