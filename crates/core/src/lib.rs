//! Security threat analytics and countermeasure synthesis for power
//! system state estimation — the DSN'14 paper's contribution, reproduced.
//!
//! * [`attack`] — the UFDI attack verification model (paper §III):
//!   adversary knowledge, accessibility, resource limits, attack goals and
//!   topology poisoning, encoded into the [`sta_smt`] solver;
//! * [`synthesis`] — Algorithm 1, the CEGIS-style security-architecture
//!   synthesis loop (paper §IV);
//! * [`baselines`] — the defenses the paper positions against: Bobba et
//!   al.'s basic-measurement protection and a Kim–Poor-style greedy bus
//!   selection;
//! * [`validation`] — end-to-end stealthiness replay of every witness
//!   against the real WLS estimator;
//! * [`decimal`] — exact decimal-rational bridging for grid data.
//!
//! # Examples
//!
//! Verify the paper's Attack Objective 1 (states 9 and 10, different
//! amounts, ≤ 16 measurements in ≤ 7 substations):
//!
//! ```
//! use sta_core::attack::{AttackModel, AttackVerifier, StateTarget};
//! use sta_grid::{ieee14, BusId};
//!
//! let sys = ieee14::system();
//! let verifier = AttackVerifier::new(&sys);
//! let model = AttackModel::new(14)
//!     .target(BusId(8), StateTarget::MustChange)   // state 9
//!     .target(BusId(9), StateTarget::MustChange)   // state 10
//!     .require_different_change(BusId(8), BusId(9))
//!     .max_altered_measurements(16)
//!     .max_compromised_buses(7);
//! assert!(verifier.verify(&model).is_feasible());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod analytics;
pub mod attack;
pub mod baselines;
pub mod cutattack;
pub mod decimal;
pub mod impact;
pub mod scenario;
pub mod synthesis;
pub mod validation;

pub use analytics::{StateThreat, ThreatAnalyzer, ThreatAssessment};
pub use cutattack::{best_cut_attack, CutAttack};
pub use impact::{ImpactReport, LineImpact};
pub use attack::{AttackModel, AttackOutcome, AttackVector, AttackVerifier, StateTarget};
pub use synthesis::{
    BlockingStrategy, SynthesisConfig, SynthesisObservation, SynthesisOutcome, Synthesizer,
};
pub use validation::{replay, replay_default, replay_noisy, NoisyReplayResult, ReplayResult};
