//! Security threat analytics: grid-wide attackability assessment.
//!
//! The verification model answers one scenario at a time; an operator
//! wants the whole picture — which state estimates are attackable at all,
//! how much attacker effort each needs (the minimal `T_CZ`/`T_CB` that
//! keeps the scenario satisfiable), and which lines open topology-attack
//! channels. [`ThreatAnalyzer`] sweeps those questions with repeated
//! verifier calls (binary search on the resource budgets) and packages a
//! [`ThreatAssessment`] an operator — or the synthesis front end — can
//! rank.

use crate::attack::{AttackModel, AttackVector, AttackVerifier, StateTarget};
use sta_grid::{BusId, LineId, TestSystem};
use std::fmt;

/// Attackability of one state estimate.
#[derive(Debug, Clone)]
pub struct StateThreat {
    /// The state (bus) assessed.
    pub bus: BusId,
    /// Minimal number of altered measurements over all attacks corrupting
    /// this state, or `None` if it cannot be attacked at all.
    pub min_measurements: Option<usize>,
    /// Minimal number of compromised substations.
    pub min_buses: Option<usize>,
    /// A minimal-measurement witness.
    pub example: Option<AttackVector>,
}

impl StateThreat {
    /// Whether any stealthy attack reaches this state.
    pub fn is_attackable(&self) -> bool {
        self.min_measurements.is_some()
    }
}

/// Grid-wide assessment.
#[derive(Debug, Clone)]
pub struct ThreatAssessment {
    /// Per-state threats, indexed by bus.
    pub states: Vec<StateThreat>,
    /// Lines whose breaker-status telemetry an attacker could falsify
    /// (exclusion or inclusion candidates under the system's flags).
    pub poisonable_lines: Vec<LineId>,
}

impl ThreatAssessment {
    /// States sorted by ascending attack cost (cheapest first); the
    /// un-attackable states are omitted.
    pub fn ranked(&self) -> Vec<&StateThreat> {
        let mut v: Vec<&StateThreat> =
            self.states.iter().filter(|s| s.is_attackable()).collect();
        v.sort_by_key(|s| (s.min_measurements.unwrap(), s.min_buses.unwrap_or(0)));
        v
    }

    /// Number of attackable states.
    pub fn num_attackable(&self) -> usize {
        self.states.iter().filter(|s| s.is_attackable()).count()
    }
}

impl fmt::Display for ThreatAssessment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} of {} states attackable",
            self.num_attackable(),
            self.states.len()
        )?;
        for s in self.ranked() {
            writeln!(
                f,
                "  bus {}: ≥{} measurements in ≥{} substations",
                s.bus.0 + 1,
                s.min_measurements.unwrap(),
                s.min_buses.unwrap_or(0),
            )?;
        }
        if !self.poisonable_lines.is_empty() {
            write!(f, "  poisonable lines:")?;
            for l in &self.poisonable_lines {
                write!(f, " {}", l.0 + 1)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Sweeps the attack model over every state of a system.
#[derive(Debug)]
pub struct ThreatAnalyzer<'a> {
    system: &'a TestSystem,
    verifier: AttackVerifier,
    /// Base scenario applied to every probe (knowledge, accessibility,
    /// extra protection); targets and budgets are overridden per probe.
    base: AttackModel,
}

impl<'a> ThreatAnalyzer<'a> {
    /// Creates an analyzer with a full-knowledge, unconstrained base
    /// attacker.
    pub fn new(system: &'a TestSystem) -> Self {
        ThreatAnalyzer {
            system,
            verifier: AttackVerifier::new(system),
            base: AttackModel::new(system.grid.num_buses()),
        }
    }

    /// Replaces the base attacker scenario (targets and budgets in it are
    /// ignored).
    pub fn with_base(mut self, base: AttackModel) -> Self {
        self.base = base;
        self
    }

    fn probe(&self, bus: BusId, t_cz: Option<usize>, t_cb: Option<usize>) -> Option<AttackVector> {
        let mut model = self.base.clone();
        model.targets = vec![StateTarget::Free; self.system.grid.num_buses()];
        model.targets[bus.0] = StateTarget::MustChange;
        model.max_altered_measurements = t_cz;
        model.max_compromised_buses = t_cb;
        self.verifier.verify(&model).vector().cloned()
    }

    /// Binary-searches the minimal feasible value of a budget in
    /// `[1, hi]`, given that `hi` is feasible.
    fn minimize(
        &self,
        hi: usize,
        feasible_at: impl Fn(usize) -> bool,
    ) -> usize {
        let mut lo = 1usize;
        let mut hi = hi;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if feasible_at(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Assesses one state.
    pub fn assess_state(&self, bus: BusId) -> StateThreat {
        let Some(unbounded) = self.probe(bus, None, None) else {
            return StateThreat {
                bus,
                min_measurements: None,
                min_buses: None,
                example: None,
            };
        };
        let m0 = unbounded.num_alterations();
        let min_m =
            self.minimize(m0, |k| self.probe(bus, Some(k), None).is_some());
        let witness = self.probe(bus, Some(min_m), None).expect("minimum feasible");
        let b0 = witness.compromised_buses.len();
        let min_b =
            self.minimize(b0, |k| self.probe(bus, None, Some(k)).is_some());
        StateThreat {
            bus,
            min_measurements: Some(min_m),
            min_buses: Some(min_b),
            example: Some(witness),
        }
    }

    /// Assesses every non-reference state plus the topology channels.
    pub fn assess(&self) -> ThreatAssessment {
        let b = self.system.grid.num_buses();
        let states = (0..b)
            .map(|j| {
                if j == self.system.reference_bus.0 {
                    StateThreat {
                        bus: BusId(j),
                        min_measurements: None,
                        min_buses: None,
                        example: None,
                    }
                } else {
                    self.assess_state(BusId(j))
                }
            })
            .collect();
        let poisonable_lines = (0..self.system.grid.num_lines())
            .map(LineId)
            .filter(|&l| self.system.excludable(l) || self.system.includable(l))
            .collect();
        ThreatAssessment { states, poisonable_lines }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_grid::ieee14;

    #[test]
    fn assessment_covers_every_state() {
        let sys = ieee14::system_unsecured();
        let analyzer = ThreatAnalyzer::new(&sys);
        let assessment = analyzer.assess();
        assert_eq!(assessment.states.len(), 14);
        // The reference state is never attackable; everything else is in
        // the unsecured configuration.
        assert!(!assessment.states[0].is_attackable());
        assert_eq!(assessment.num_attackable(), 13);
        // Lines 5 and 13 are the poisonable ones (non-core).
        let p: Vec<usize> =
            assessment.poisonable_lines.iter().map(|l| l.0 + 1).collect();
        assert_eq!(p, vec![5, 13]);
    }

    #[test]
    fn minimal_budgets_are_tight() {
        let sys = ieee14::system_unsecured();
        let analyzer = ThreatAnalyzer::new(&sys);
        // State 12's minimal attack (paper Objective 2 neighborhood):
        // 5 altered measurements across 3 buses is known to work; nothing
        // smaller can (its two incident lines demand those meters).
        let threat = analyzer.assess_state(BusId(11));
        assert_eq!(threat.min_measurements, Some(5));
        assert_eq!(threat.min_buses, Some(3));
        let witness = threat.example.unwrap();
        assert_eq!(witness.num_alterations(), 5);
    }

    #[test]
    fn ranking_orders_by_cost() {
        let sys = ieee14::system_unsecured();
        let analyzer = ThreatAnalyzer::new(&sys);
        let assessment = analyzer.assess();
        let ranked = assessment.ranked();
        for pair in ranked.windows(2) {
            assert!(
                pair[0].min_measurements.unwrap() <= pair[1].min_measurements.unwrap()
            );
        }
        // Display smoke.
        let text = assessment.to_string();
        assert!(text.contains("states attackable"));
    }

    #[test]
    fn secured_system_reduces_attack_surface() {
        let secured = ieee14::system();
        let unsecured = ieee14::system_unsecured();
        let a_secured = ThreatAnalyzer::new(&secured).assess();
        let a_unsecured = ThreatAnalyzer::new(&unsecured).assess();
        // Table III's protections cannot make any state cheaper to attack.
        for j in 0..14 {
            match (
                a_unsecured.states[j].min_measurements,
                a_secured.states[j].min_measurements,
            ) {
                (None, Some(_)) => panic!("protection enabled an attack"),
                (Some(u), Some(s)) => assert!(s >= u, "bus {}", j + 1),
                _ => {}
            }
        }
    }

    #[test]
    fn enumerate_produces_distinct_attacks() {
        let sys = ieee14::system_unsecured();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .max_altered_measurements(8);
        let attacks = verifier.enumerate(&model, 4);
        assert!(attacks.len() >= 2, "expected multiple distinct attacks");
        // Pairwise distinct alteration sets.
        for i in 0..attacks.len() {
            for j in i + 1..attacks.len() {
                let a: Vec<_> =
                    attacks[i].alterations.iter().map(|x| x.measurement).collect();
                let b: Vec<_> =
                    attacks[j].alterations.iter().map(|x| x.measurement).collect();
                assert_ne!(a, b);
            }
        }
    }
}
