//! End-to-end validation: replay an attack vector against the real
//! estimator stack and confirm stealthiness.
//!
//! The SMT model proves feasibility symbolically; this module closes the
//! loop by actually *running* the attack: build the base operating point's
//! measurement snapshot, apply the injections, re-run WLS under the
//! (possibly poisoned) topology the EMS would map, and compare residuals
//! and state estimates. Every satisfiable witness in the test suite passes
//! through here, so a bug in either the encoding or the estimator shows up
//! as a residual jump.

use crate::attack::AttackVector;
use sta_estimator::dcflow::OperatingPoint;
use sta_estimator::{dcflow, WlsEstimator};
use sta_grid::{MeasurementId, TestSystem, Topology};
use sta_linalg::Vector;
use std::fmt;

/// The outcome of replaying an attack against the estimator.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Residual norm of the clean estimate (pre-attack).
    pub residual_before: f64,
    /// Residual norm of the post-attack estimate under the EMS-visible
    /// topology.
    pub residual_after: f64,
    /// Largest state-estimate displacement caused by the attack.
    pub max_state_shift: f64,
    /// Per-bus state shifts actually realized by the estimator.
    pub state_shifts: Vec<f64>,
}

impl ReplayResult {
    /// Whether the attack stayed stealthy: the residual did not grow by
    /// more than `tol`.
    pub fn is_stealthy(&self, tol: f64) -> bool {
        self.residual_after <= self.residual_before + tol
    }
}

impl fmt::Display for ReplayResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "residual {:.3e} → {:.3e}, max state shift {:.4}",
            self.residual_before, self.residual_after, self.max_state_shift
        )
    }
}

/// Error from [`replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The faked topology leaves the system unobservable — the EMS would
    /// reject the snapshot rather than estimate from it.
    UnobservableUnderAttack,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnobservableUnderAttack => {
                f.write_str("system unobservable under the attacked topology")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays `attack` on `sys` anchored at `op`.
///
/// The EMS-visible topology is the true topology with the attack's
/// exclusions opened and inclusions closed; measurement deltas are applied
/// to the noiseless snapshot of `op`.
///
/// # Errors
/// Returns [`ReplayError::UnobservableUnderAttack`] when the poisoned
/// topology cannot support a WLS estimate.
pub fn replay(
    sys: &TestSystem,
    op: &OperatingPoint,
    attack: &AttackVector,
) -> Result<ReplayResult, ReplayError> {
    // Clean estimate under the true topology.
    let clean_est = WlsEstimator::new(
        &sys.grid,
        &sys.topology,
        &sys.measurements,
        sys.reference_bus,
        None,
    )
    .map_err(|_| ReplayError::UnobservableUnderAttack)?;
    let z = clean_est.measure(op);
    let before = clean_est
        .estimate(&z)
        .map_err(|_| ReplayError::UnobservableUnderAttack)?;

    // Topology the EMS maps after poisoning.
    let mut mapped: Topology = sys.topology.clone();
    for &line in &attack.excluded_lines {
        mapped = mapped.with_line_open(line);
    }
    for &line in &attack.included_lines {
        mapped = mapped.with_line_closed(line);
    }
    let attacked_est = WlsEstimator::new(
        &sys.grid,
        &mapped,
        &sys.measurements,
        sys.reference_bus,
        None,
    )
    .map_err(|_| ReplayError::UnobservableUnderAttack)?;

    // The raw meter readings are the same physical snapshot (the grid is
    // still wired per the *true* topology — only the EMS's map changed)
    // plus the injected deltas.
    let mut z_attacked: Vector = z.clone();
    for alt in &attack.alterations {
        if let Some(row) = attacked_est.row_of(MeasurementId(alt.measurement.0)) {
            z_attacked[row] += alt.delta;
        }
    }
    let after = attacked_est
        .estimate(&z_attacked)
        .map_err(|_| ReplayError::UnobservableUnderAttack)?;

    let shifts: Vec<f64> = (0..sys.grid.num_buses())
        .map(|j| after.theta[j] - before.theta[j])
        .collect();
    let max_shift = shifts.iter().fold(0.0f64, |m, s| m.max(s.abs()));
    Ok(ReplayResult {
        residual_before: before.residual_norm,
        residual_after: after.residual_norm,
        max_state_shift: max_shift,
        state_shifts: shifts,
    })
}

/// Replays with the verifier's default operating point (seed 0), matching
/// [`crate::attack::AttackVerifier::new`].
///
/// # Errors
/// See [`replay`].
pub fn replay_default(
    sys: &TestSystem,
    attack: &AttackVector,
) -> Result<ReplayResult, ReplayError> {
    let injections = dcflow::synthetic_injections(sys.grid.num_buses(), 0);
    let op = dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)
        .expect("connected test system");
    replay(sys, &op, attack)
}

/// Outcome of a Monte-Carlo noisy replay.
#[derive(Debug, Clone)]
pub struct NoisyReplayResult {
    /// Chi-square detection rate over clean noisy snapshots (should sit
    /// near the detector's significance level α).
    pub clean_alarm_rate: f64,
    /// Detection rate over attacked noisy snapshots (a stealthy attack
    /// keeps this statistically indistinguishable from the clean rate).
    pub attacked_alarm_rate: f64,
    /// Mean (over trials) of the maximal per-bus state displacement.
    pub mean_max_state_shift: f64,
    /// Trials per arm.
    pub trials: usize,
}

/// Monte-Carlo replay under Gaussian meter noise: the stealthiness claim
/// must survive realistic noise, not just the noiseless identity
/// `a = H·c`. Runs `trials` paired snapshots (same noise with and without
/// the attack) through a χ² detector calibrated to `sigma`.
///
/// # Errors
/// See [`replay`]; additionally inherits its unobservability conditions.
///
/// # Panics
/// Panics if `trials == 0` or `sigma ≤ 0`.
pub fn replay_noisy(
    sys: &TestSystem,
    op: &OperatingPoint,
    attack: &AttackVector,
    sigma: f64,
    trials: usize,
    seed: u64,
) -> Result<NoisyReplayResult, ReplayError> {
    use sta_estimator::noise::GaussianNoise;
    assert!(trials > 0, "need at least one trial");
    assert!(sigma > 0.0, "noise level must be positive");

    let mut mapped = sys.topology.clone();
    for &line in &attack.excluded_lines {
        mapped = mapped.with_line_open(line);
    }
    for &line in &attack.included_lines {
        mapped = mapped.with_line_closed(line);
    }
    let weight = 1.0 / (sigma * sigma);
    let num_taken = sys.measurements.num_taken();
    let clean_est = WlsEstimator::new(
        &sys.grid,
        &sys.topology,
        &sys.measurements,
        sys.reference_bus,
        Some(vec![weight; num_taken]),
    )
    .map_err(|_| ReplayError::UnobservableUnderAttack)?;
    let attacked_est = WlsEstimator::new(
        &sys.grid,
        &mapped,
        &sys.measurements,
        sys.reference_bus,
        Some(vec![weight; num_taken]),
    )
    .map_err(|_| ReplayError::UnobservableUnderAttack)?;
    let detector = sta_estimator::BadDataDetector::new(0.05);
    let z0 = clean_est.measure(op);

    let mut noise = GaussianNoise::new(sigma, seed);
    let mut clean_alarms = 0usize;
    let mut attacked_alarms = 0usize;
    let mut shift_acc = 0.0f64;
    for _ in 0..trials {
        let noisy = noise.perturb(&z0);
        let clean_result = clean_est
            .estimate(&noisy)
            .map_err(|_| ReplayError::UnobservableUnderAttack)?;
        if detector.detect(&clean_est, &clean_result).is_bad() {
            clean_alarms += 1;
        }
        let mut attacked = noisy.clone();
        for alt in &attack.alterations {
            if let Some(row) = attacked_est.row_of(MeasurementId(alt.measurement.0)) {
                attacked[row] += alt.delta;
            }
        }
        let attacked_result = attacked_est
            .estimate(&attacked)
            .map_err(|_| ReplayError::UnobservableUnderAttack)?;
        if detector.detect(&attacked_est, &attacked_result).is_bad() {
            attacked_alarms += 1;
        }
        let shift = (0..sys.grid.num_buses())
            .map(|j| (attacked_result.theta[j] - clean_result.theta[j]).abs())
            .fold(0.0f64, f64::max);
        shift_acc += shift;
    }
    Ok(NoisyReplayResult {
        clean_alarm_rate: clean_alarms as f64 / trials as f64,
        attacked_alarm_rate: attacked_alarms as f64 / trials as f64,
        mean_max_state_shift: shift_acc / trials as f64,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackModel, AttackVerifier, StateTarget};
    use sta_grid::{ieee14, BusId};

    #[test]
    fn verified_attack_is_stealthy_in_replay() {
        let sys = ieee14::system();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14).target(BusId(9), StateTarget::MustChange);
        let attack = verifier.verify(&model).expect_feasible();
        let result = replay_default(&sys, &attack).unwrap();
        assert!(result.is_stealthy(1e-6), "{result}");
        assert!(result.max_state_shift > 1e-9, "{result}");
    }

    #[test]
    fn noisy_replay_attack_statistically_invisible() {
        let sys = ieee14::system_unsecured();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14).target(BusId(9), StateTarget::MustChange);
        let attack = verifier.verify(&model).expect_feasible();
        let injections = sta_estimator::dcflow::synthetic_injections(14, 0);
        let op = sta_estimator::dcflow::solve(
            &sys.grid,
            &sys.topology,
            &injections,
            sys.reference_bus,
        )
        .unwrap();
        let result = replay_noisy(&sys, &op, &attack, 0.02, 60, 7).unwrap();
        // Alarm rates match within Monte-Carlo noise, both near α = 0.05.
        assert!(
            (result.attacked_alarm_rate - result.clean_alarm_rate).abs() <= 0.1,
            "{result:?}"
        );
        assert!(result.clean_alarm_rate <= 0.25, "{result:?}");
        // And the attack still moves the estimate through the noise.
        assert!(result.mean_max_state_shift > 0.05, "{result:?}");
    }

    #[test]
    fn noisy_replay_of_topology_attack() {
        let sys = ieee14::system_unsecured();
        let verifier = AttackVerifier::new(&sys);
        let mut model = AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .secure_measurement(sta_grid::MeasurementId(45))
            .with_topology_attack();
        for j in 0..14 {
            if j != 11 {
                model = model.target(BusId(j), StateTarget::MustNotChange);
            }
        }
        let attack = verifier.verify(&model).expect_feasible();
        let injections = sta_estimator::dcflow::synthetic_injections(14, 0);
        let op = sta_estimator::dcflow::solve(
            &sys.grid,
            &sys.topology,
            &injections,
            sys.reference_bus,
        )
        .unwrap();
        let result = replay_noisy(&sys, &op, &attack, 0.02, 40, 11).unwrap();
        assert!(
            (result.attacked_alarm_rate - result.clean_alarm_rate).abs() <= 0.15,
            "{result:?}"
        );
    }

    #[test]
    fn corrupting_the_vector_breaks_stealth() {
        let sys = ieee14::system();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14).target(BusId(9), StateTarget::MustChange);
        let mut attack = verifier.verify(&model).expect_feasible();
        // Sabotage one injection amount: the residual must move.
        attack.alterations[0].delta += 1.0;
        let result = replay_default(&sys, &attack).unwrap();
        assert!(!result.is_stealthy(1e-6), "{result}");
    }
}
