//! Bridging `f64` grid data into exact rationals for the SMT encoding.
//!
//! Grid admittances are published with two decimals (paper Table II) and
//! operating-point angles are `f64`s from the power-flow solver. The SMT
//! side needs exact [`Rational`]s; converting via binary-float expansion
//! would produce enormous denominators and subtly inconsistent constants.
//! Instead we round to a fixed decimal precision, which is exact for the
//! published data and keeps every derived constant consistent.

use sta_smt::bigint::BigInt;
use sta_smt::Rational;

/// Converts `v` to the exact rational `round(v·10^digits) / 10^digits`.
///
/// # Panics
/// Panics if `v` is not finite or `digits > 18` (would overflow the
/// scaling factor).
///
/// # Examples
///
/// ```
/// use sta_core::decimal::rational_from_f64;
/// use sta_smt::Rational;
///
/// assert_eq!(rational_from_f64(16.90, 2), Rational::new(1690, 100));
/// assert_eq!(rational_from_f64(-0.125, 3), Rational::new(-125, 1000));
/// ```
pub fn rational_from_f64(v: f64, digits: u32) -> Rational {
    assert!(v.is_finite(), "cannot convert non-finite float");
    assert!(digits <= 18, "precision too high for i64 scaling");
    let scale = 10i64.pow(digits);
    let scaled = v * scale as f64;
    assert!(
        scaled.abs() < 9.2e18,
        "value {v} out of range at {digits} digits"
    );
    Rational::from_bigints(BigInt::from(scaled.round() as i64), BigInt::from(scale))
}

/// The nine-decimal precision used for operating-point angles.
pub const ANGLE_DIGITS: u32 = 9;

/// The two-decimal precision of published admittance data.
pub const ADMITTANCE_DIGITS: u32 = 2;

/// Converts an admittance (two published decimals).
pub fn admittance(v: f64) -> Rational {
    rational_from_f64(v, ADMITTANCE_DIGITS)
}

/// Converts an operating-point angle or flow (nine decimals).
pub fn angle(v: f64) -> Rational {
    rational_from_f64(v, ANGLE_DIGITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_published_precision() {
        assert_eq!(admittance(23.75), Rational::new(2375, 100));
        assert_eq!(admittance(5.05), Rational::new(505, 100));
        assert_eq!(admittance(2.87), Rational::new(287, 100));
    }

    #[test]
    fn rounding_is_nearest() {
        assert_eq!(rational_from_f64(0.1049, 2), Rational::new(10, 100));
        assert_eq!(rational_from_f64(0.105, 2), Rational::new(11, 100));
        assert_eq!(rational_from_f64(-0.105, 2), Rational::new(-11, 100));
    }

    #[test]
    fn zero_and_integers() {
        assert_eq!(rational_from_f64(0.0, 9), Rational::zero());
        assert_eq!(rational_from_f64(3.0, 0), Rational::new(3, 1));
    }

    #[test]
    fn roundtrip_error_bounded() {
        for &v in &[0.123456789f64, -7.654321, 1e-7, 3.99999] {
            let r = angle(v);
            assert!((r.to_f64() - v).abs() < 5e-10, "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let _ = rational_from_f64(f64::NAN, 2);
    }
}
