//! Baseline defenses the paper positions itself against.
//!
//! * **Bobba et al. [6]** — securing a *basic measurement set* (a minimal
//!   observability-preserving subset) is necessary and sufficient to
//!   detect every UFDI attack, but assumes a worst-case attacker and
//!   offers no budget control. Implemented on top of
//!   [`sta_estimator::observability::basic_measurement_set`].
//! * **Kim & Poor [7]** — a greedy, sub-optimal selection of protection
//!   points. Reconstructed here as an oracle-guided loop: repeatedly find
//!   a feasible attack, secure the compromised bus hosting the most
//!   alterations, repeat until the attack model is blocked.
//!
//! Both return *what to secure*; the paper's synthesis ([`crate::synthesis`])
//! is the budget-aware alternative the evaluation compares them with.

use crate::attack::{AttackModel, AttackVerifier};
use sta_estimator::observability;
use sta_grid::{BusId, MeasurementConfig, MeasurementId, TestSystem};
use std::collections::BTreeMap;

/// Bobba et al.: a basic (minimal observability-preserving) measurement
/// set whose protection defeats all UFDI attacks.
///
/// Returns `None` when the taken measurements are not observable to begin
/// with.
///
/// # Examples
///
/// ```
/// use sta_core::baselines;
/// use sta_grid::ieee14;
///
/// let sys = ieee14::system();
/// let basic = baselines::bobba_protection(&sys).expect("observable");
/// assert_eq!(basic.len(), 13); // n = b − 1 measurements
/// ```
pub fn bobba_protection(sys: &TestSystem) -> Option<Vec<MeasurementId>> {
    observability::basic_measurement_set(
        &sys.grid,
        &sys.topology,
        &sys.measurements,
        sys.reference_bus,
    )
}

/// Checks that securing `measurements` defeats `attacker` on `sys`.
pub fn blocks_attack(
    sys: &TestSystem,
    measurements: &[MeasurementId],
    attacker: &AttackModel,
) -> bool {
    let verifier = AttackVerifier::new(sys);
    let mut hardened = attacker.clone();
    hardened
        .extra_secured_measurements
        .extend_from_slice(measurements);
    !verifier.verify(&hardened).is_feasible()
}

/// Result of the greedy baseline.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// Buses secured, in selection order.
    pub secured_buses: Vec<BusId>,
    /// Attack-verification oracle calls used.
    pub oracle_calls: usize,
}

/// Kim–Poor-style greedy defense: secure buses one at a time, each round
/// picking the bus that hosts the most alterations of the current
/// counterexample attack, until the attack model is infeasible.
///
/// Returns `None` if even securing every bus leaves the model feasible
/// (cannot happen for any attack model that requires altering at least
/// one measurement).
pub fn kim_poor_greedy(sys: &TestSystem, attacker: &AttackModel) -> Option<GreedyResult> {
    let verifier = AttackVerifier::new(sys);
    let mut secured: Vec<BusId> = Vec::new();
    let mut oracle_calls = 0usize;
    let b = sys.grid.num_buses();
    while secured.len() <= b {
        let mut hardened = attacker.clone();
        hardened.extra_secured_buses.extend(secured.iter().copied());
        oracle_calls += 1;
        let outcome = verifier.verify(&hardened);
        let Some(vector) = outcome.vector() else {
            return Some(GreedyResult { secured_buses: secured, oracle_calls });
        };
        // Count alterations per hosting bus; secure the busiest new bus.
        let mut counts: BTreeMap<BusId, usize> = BTreeMap::new();
        for alt in &vector.alterations {
            let bus = MeasurementConfig::bus_of(&sys.grid, alt.measurement);
            *counts.entry(bus).or_insert(0) += 1;
        }
        let pick = counts
            .into_iter()
            .filter(|(bus, _)| !secured.contains(bus))
            .max_by_key(|&(bus, c)| (c, usize::MAX - bus.0))?;
        secured.push(pick.0);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::StateTarget;
    use sta_grid::ieee14;

    #[test]
    fn bobba_set_defeats_unconstrained_attacker() {
        let sys = ieee14::system();
        let basic = bobba_protection(&sys).expect("observable");
        let attacker = AttackModel::new(14);
        assert!(blocks_attack(&sys, &basic, &attacker));
    }

    #[test]
    fn bobba_set_minus_one_is_insufficient() {
        // Necessity: with no other protection in place, dropping any
        // measurement from the basic set reopens an attack (Bobba et
        // al.'s tightness result, spot-checked on the unsecured variant —
        // Table III's own secured meters would otherwise fill the gap).
        let sys = ieee14::system_unsecured();
        let basic = bobba_protection(&sys).expect("observable");
        let attacker = AttackModel::new(14);
        let reduced: Vec<MeasurementId> =
            basic.iter().skip(1).copied().collect();
        assert!(!blocks_attack(&sys, &reduced, &attacker));
    }

    #[test]
    fn greedy_terminates_and_blocks() {
        let sys = ieee14::system_unsecured();
        let attacker = AttackModel::new(14)
            .target(sta_grid::BusId(11), StateTarget::MustChange)
            .max_altered_measurements(8);
        let result = kim_poor_greedy(&sys, &attacker).expect("converges");
        assert!(!result.secured_buses.is_empty());
        assert!(result.oracle_calls >= result.secured_buses.len());
        // Final set actually blocks.
        let verifier = AttackVerifier::new(&sys);
        let hardened = attacker.clone().secure_buses(&result.secured_buses);
        assert!(!verifier.verify(&hardened).is_feasible());
    }

    #[test]
    fn greedy_usually_oversecures_relative_to_synthesis() {
        // The greedy baseline has no budget; it may use more buses than
        // the synthesized optimum. Just document the comparison shape:
        // both block, greedy ≥ 1 bus.
        let sys = ieee14::system_unsecured();
        let attacker = AttackModel::new(14)
            .target(sta_grid::BusId(11), StateTarget::MustChange)
            .max_altered_measurements(8);
        let greedy = kim_poor_greedy(&sys, &attacker).expect("converges");
        let synth = crate::synthesis::Synthesizer::new(&sys);
        let outcome = synth.synthesize(
            &attacker,
            &crate::synthesis::SynthesisConfig::with_budget(greedy.secured_buses.len()),
        );
        // Synthesis never needs more than greedy used.
        assert!(outcome.is_solution());
    }
}
