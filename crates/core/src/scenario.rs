//! Text format for attack scenarios.
//!
//! The paper's toolchain is driven by input files (§III-H); grids come in
//! through [`sta_grid::caseformat`], and this module does the same for
//! the *attack model*: a line-oriented description of the adversary's
//! goal, knowledge, resources and capabilities that parses into an
//! [`AttackModel`].
//!
//! # Format
//!
//! ```text
//! # all indices 1-based, as in the paper
//! target 9 change          # state 9 must be corrupted
//! target 10 change
//! target 12 keep           # state 12 must stay correct
//! different 9 10           # Δθ9 ≠ Δθ10
//! unknown-lines 3 7 17     # admittances the attacker lacks
//! max-measurements 16      # T_CZ
//! max-buses 7              # T_CB
//! topology-attack          # may falsify breaker statuses
//! strict-knowledge         # strict Eq.17 reading
//! secure-measurement 46    # extra protection (what-if)
//! secure-bus 1
//! deny-measurement 5       # attacker cannot reach this meter
//! certify full             # certify every solver answer (off|models|full)
//! ```

use crate::attack::{AttackModel, StateTarget};
use sta_grid::{BusId, MeasurementId};
use sta_smt::CertifyLevel;
use std::fmt;

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScenarioError {
    /// 1-indexed input line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseScenarioError {}

fn err(line: usize, message: impl Into<String>) -> ParseScenarioError {
    ParseScenarioError { line, message: message.into() }
}

/// Parses a scenario for a system with `num_buses` buses and `num_lines`
/// lines.
///
/// # Errors
/// Returns [`ParseScenarioError`] on malformed or out-of-range input.
pub fn parse(
    text: &str,
    num_buses: usize,
    num_lines: usize,
) -> Result<AttackModel, ParseScenarioError> {
    let mut model = AttackModel::new(num_buses);
    let num_measurements = 2 * num_lines + num_buses;
    for (ln, raw) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap();
        let rest: Vec<&str> = parts.collect();
        let parse_index = |tok: &str, max: usize, what: &str| -> Result<usize, ParseScenarioError> {
            let v: usize = tok
                .parse()
                .map_err(|_| err(ln, format!("bad {what} index {tok:?}")))?;
            if v == 0 || v > max {
                return Err(err(ln, format!("{what} {v} out of range 1..={max}")));
            }
            Ok(v - 1)
        };
        match keyword {
            "target" => {
                if rest.len() != 2 {
                    return Err(err(ln, "target needs: <state> change|keep"));
                }
                let bus = parse_index(rest[0], num_buses, "state")?;
                let goal = match rest[1] {
                    "change" => StateTarget::MustChange,
                    "keep" => StateTarget::MustNotChange,
                    other => return Err(err(ln, format!("unknown goal {other:?}"))),
                };
                model.targets[bus] = goal;
            }
            "different" => {
                if rest.len() != 2 {
                    return Err(err(ln, "different needs two states"));
                }
                let a = parse_index(rest[0], num_buses, "state")?;
                let b = parse_index(rest[1], num_buses, "state")?;
                model.different_changes.push((BusId(a), BusId(b)));
            }
            "unknown-lines" => {
                let mut bd = model
                    .known_admittances
                    .take()
                    .unwrap_or_else(|| vec![true; num_lines]);
                for tok in rest {
                    bd[parse_index(tok, num_lines, "line")?] = false;
                }
                model.known_admittances = Some(bd);
            }
            "max-measurements" => {
                let v: usize = rest
                    .first()
                    .ok_or_else(|| err(ln, "missing limit"))?
                    .parse()
                    .map_err(|_| err(ln, "bad limit"))?;
                model.max_altered_measurements = Some(v);
            }
            "max-buses" => {
                let v: usize = rest
                    .first()
                    .ok_or_else(|| err(ln, "missing limit"))?
                    .parse()
                    .map_err(|_| err(ln, "bad limit"))?;
                model.max_compromised_buses = Some(v);
            }
            "topology-attack" => model.allow_topology_attack = true,
            "strict-knowledge" => model.strict_knowledge = true,
            "secure-measurement" => {
                for tok in rest {
                    let id = parse_index(tok, num_measurements, "measurement")?;
                    model.extra_secured_measurements.push(MeasurementId(id));
                }
            }
            "secure-bus" => {
                for tok in rest {
                    let id = parse_index(tok, num_buses, "bus")?;
                    model.extra_secured_buses.push(BusId(id));
                }
            }
            "deny-measurement" => {
                for tok in rest {
                    let id = parse_index(tok, num_measurements, "measurement")?;
                    model.inaccessible_measurements.push(MeasurementId(id));
                }
            }
            "timeout-ms" => {
                let v: u64 = rest
                    .first()
                    .ok_or_else(|| err(ln, "missing timeout"))?
                    .parse()
                    .map_err(|_| err(ln, "bad timeout"))?;
                model.timeout_ms = Some(v);
            }
            "certify" => {
                let level = match rest.first().copied() {
                    Some("off") => CertifyLevel::Off,
                    Some("models") => CertifyLevel::CheckModels,
                    Some("full") => CertifyLevel::Full,
                    Some(other) => {
                        return Err(err(
                            ln,
                            format!("certify needs off|models|full, got {other:?}"),
                        ))
                    }
                    None => return Err(err(ln, "certify needs off|models|full")),
                };
                model.certify = level;
            }
            other => return Err(err(ln, format!("unknown keyword {other:?}"))),
        }
    }
    Ok(model)
}

/// Serializes an [`AttackModel`] back into the scenario format.
pub fn write(model: &AttackModel) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (j, t) in model.targets.iter().enumerate() {
        match t {
            StateTarget::MustChange => {
                let _ = writeln!(out, "target {} change", j + 1);
            }
            StateTarget::MustNotChange => {
                let _ = writeln!(out, "target {} keep", j + 1);
            }
            StateTarget::Free => {}
        }
    }
    for (a, b) in &model.different_changes {
        let _ = writeln!(out, "different {} {}", a.0 + 1, b.0 + 1);
    }
    if let Some(bd) = &model.known_admittances {
        let unknown: Vec<String> = bd
            .iter()
            .enumerate()
            .filter(|(_, &k)| !k)
            .map(|(i, _)| (i + 1).to_string())
            .collect();
        if !unknown.is_empty() {
            let _ = writeln!(out, "unknown-lines {}", unknown.join(" "));
        }
    }
    if let Some(v) = model.max_altered_measurements {
        let _ = writeln!(out, "max-measurements {v}");
    }
    if let Some(v) = model.max_compromised_buses {
        let _ = writeln!(out, "max-buses {v}");
    }
    if model.allow_topology_attack {
        let _ = writeln!(out, "topology-attack");
    }
    if model.strict_knowledge {
        let _ = writeln!(out, "strict-knowledge");
    }
    for id in &model.extra_secured_measurements {
        let _ = writeln!(out, "secure-measurement {}", id.0 + 1);
    }
    for bus in &model.extra_secured_buses {
        let _ = writeln!(out, "secure-bus {}", bus.0 + 1);
    }
    for id in &model.inaccessible_measurements {
        let _ = writeln!(out, "deny-measurement {}", id.0 + 1);
    }
    if let Some(v) = model.timeout_ms {
        let _ = writeln!(out, "timeout-ms {v}");
    }
    match model.certify {
        CertifyLevel::Off => {}
        CertifyLevel::CheckModels => {
            let _ = writeln!(out, "certify models");
        }
        CertifyLevel::Full => {
            let _ = writeln!(out, "certify full");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_objective_one() {
        let text = "
            # the paper's Attack Objective 1
            target 9 change
            target 10 change
            different 9 10
            unknown-lines 3 7 17
            max-measurements 16
            max-buses 7
        ";
        let model = parse(text, 14, 20).unwrap();
        assert_eq!(model.targets[8], StateTarget::MustChange);
        assert_eq!(model.targets[9], StateTarget::MustChange);
        assert_eq!(model.different_changes, vec![(BusId(8), BusId(9))]);
        assert_eq!(model.max_altered_measurements, Some(16));
        assert_eq!(model.max_compromised_buses, Some(7));
        let bd = model.known_admittances.unwrap();
        assert!(!bd[2] && !bd[6] && !bd[16]);
        assert_eq!(bd.iter().filter(|&&k| k).count(), 17);
    }

    #[test]
    fn parses_flags_and_protection() {
        let text = "
            target 12 change
            topology-attack
            strict-knowledge
            secure-measurement 46
            secure-bus 1 6
            deny-measurement 5
        ";
        let model = parse(text, 14, 20).unwrap();
        assert!(model.allow_topology_attack);
        assert!(model.strict_knowledge);
        assert_eq!(model.extra_secured_measurements, vec![MeasurementId(45)]);
        assert_eq!(model.extra_secured_buses, vec![BusId(0), BusId(5)]);
        assert_eq!(model.inaccessible_measurements, vec![MeasurementId(4)]);
    }

    #[test]
    fn roundtrip() {
        let text = "
            target 9 change
            target 12 keep
            different 9 10
            unknown-lines 3
            max-measurements 8
            topology-attack
            secure-bus 2
        ";
        let model = parse(text, 14, 20).unwrap();
        let back = parse(&write(&model), 14, 20).unwrap();
        assert_eq!(back.targets, model.targets);
        assert_eq!(back.different_changes, model.different_changes);
        assert_eq!(back.known_admittances, model.known_admittances);
        assert_eq!(back.max_altered_measurements, model.max_altered_measurements);
        assert_eq!(back.allow_topology_attack, model.allow_topology_attack);
        assert_eq!(back.extra_secured_buses, model.extra_secured_buses);
    }

    #[test]
    fn parses_certify_levels() {
        assert_eq!(parse("certify off", 14, 20).unwrap().certify, CertifyLevel::Off);
        assert_eq!(
            parse("certify models", 14, 20).unwrap().certify,
            CertifyLevel::CheckModels
        );
        let model = parse("certify full", 14, 20).unwrap();
        assert_eq!(model.certify, CertifyLevel::Full);
        assert!(parse("certify maybe", 14, 20).is_err());
        assert!(parse("certify", 14, 20).is_err());
        // Round-trips through write().
        let back = parse(&write(&model), 14, 20).unwrap();
        assert_eq!(back.certify, CertifyLevel::Full);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("target 0 change", 14, 20).is_err());
        assert!(parse("target 15 change", 14, 20).is_err());
        assert!(parse("target 9 explode", 14, 20).is_err());
        assert!(parse("different 9", 14, 20).is_err());
        assert!(parse("unknown-lines 21", 14, 20).is_err());
        assert!(parse("max-measurements lots", 14, 20).is_err());
        assert!(parse("secure-measurement 55", 14, 20).is_err());
        assert!(parse("frobnicate", 14, 20).is_err());
        let e = parse("\n\ntarget 0 change", 14, 20).unwrap_err();
        assert_eq!(e.line, 3);
    }
}
