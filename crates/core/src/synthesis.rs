//! Security architecture synthesis — the paper's §IV, Algorithm 1.
//!
//! A CEGIS-style loop over two formal models. The *candidate selection
//! model* proposes a set of buses to secure subject to the operator's
//! budget (`Σ sb_j ≤ T_SB`, Eq. 27), operator exclusions (Eq. 29) and the
//! analytical adjacency pruning of Eq. 30. The *attack verification model*
//! ([`crate::attack::AttackVerifier`]) then checks whether the candidate
//! actually blocks the given attack model: securing a bus secures every
//! measurement taken there (Eq. 28). A failing candidate is excluded
//! together with all of its subsets (protection is monotone: removing
//! secured buses can only help the attacker), via the blocking clause
//! `∨_{j ∉ S} sb_j`. The loop ends with an architecture (verifier returns
//! unsat) or with an exhausted candidate space (no solution at this
//! budget).

use crate::attack::{AttackModel, AttackVerifier, VerifySession};
use sta_grid::{BusId, MeasurementConfig, MeasurementId, TestSystem};
use sta_smt::{
    BoolVar, Budget, CertifyLevel, Formula, PhaseMetrics, PhaseTimings, SatResult, Solver,
    SolverStats,
};
use std::fmt;
use std::time::Duration;

/// Aggregated solver observability over one synthesis run: every selection
/// check and every verification call folds its per-phase counters (and,
/// separately, wall-clock timings) into this accumulator.
#[derive(Debug, Default, Clone)]
pub struct SynthesisObservation {
    /// Deterministic per-phase counters summed over all solver calls.
    pub metrics: PhaseMetrics,
    /// Wall-clock per-phase timings summed over all solver calls.
    pub timings: PhaseTimings,
}

impl SynthesisObservation {
    fn record(&mut self, stats: &SolverStats) {
        self.metrics.merge(&stats.phase_metrics());
        self.timings.merge(&stats.phase_timings());
    }
}

/// How failed candidates are excluded from the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockingStrategy {
    /// Counterexample-guided (default): when candidate `S` fails with an
    /// attack compromising buses `B`, require `∨_{j∈B} sb_j` — any
    /// architecture disjoint from `B` admits the *same* attack, so this
    /// clause is sound and turns the loop into an implicit hitting-set
    /// search (subsuming subset blocking).
    #[default]
    CounterexampleHitting,
    /// The paper's Algorithm 1 line 14: exclude only the failed candidate
    /// (and, by monotonicity of protection, its subsets) via
    /// `∨_{j∉S} sb_j`. Kept as an ablation baseline for the benches.
    CandidateOnly,
}

/// Operator-side constraints on the architecture search.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// `T_SB`: maximum number of buses that can be secured (Eq. 27).
    pub max_secured_buses: usize,
    /// Buses the operator cannot secure (Eq. 29).
    pub unsecurable_buses: Vec<BusId>,
    /// Apply the Eq. 30 pruning: never secure two buses adjacent through
    /// a taken flow meter. On by default, as in the paper.
    pub adjacency_pruning: bool,
    /// Safety valve on loop iterations; `None` = unbounded (the candidate
    /// space is finite, so the loop always terminates anyway).
    pub max_iterations: Option<usize>,
    /// Refinement-clause strategy.
    pub blocking: BlockingStrategy,
    /// Force the reference bus into every architecture (counted against
    /// the budget). The paper's §IV-E case studies follow this
    /// convention — all three published architectures include bus 1, the
    /// declared reference — reflecting that the angle datum's substation
    /// must be trustworthy. Off by default for the general API.
    pub require_reference_secured: bool,
    /// With [`BlockingStrategy::CounterexampleHitting`], how many
    /// counterexample attacks to chain per failed candidate: after the
    /// candidate fails, its attack's buses are provisionally added and
    /// the verifier is re-run, producing additional hitting clauses
    /// before the next candidate solve. Values above 1 sharply reduce
    /// round trips on larger systems. Ignored under `CandidateOnly`.
    pub counterexamples_per_round: usize,
    /// Run both loop solvers on their persistent incremental cores
    /// (learned-clause retention, simplex warm starts) instead of
    /// clone-per-check. On by default; the `false` setting is the A/B
    /// baseline behind `sta --incremental off`.
    pub incremental: bool,
}

impl SynthesisConfig {
    /// A configuration with budget `t_sb` and the default strategy.
    pub fn with_budget(t_sb: usize) -> Self {
        SynthesisConfig {
            max_secured_buses: t_sb,
            unsecurable_buses: Vec::new(),
            adjacency_pruning: true,
            max_iterations: None,
            blocking: BlockingStrategy::default(),
            require_reference_secured: false,
            counterexamples_per_round: 4,
            incremental: true,
        }
    }

    /// Chooses between the persistent incremental solver cores (default)
    /// and the clone-per-check baseline for both CEGIS loop solvers.
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Switches to the paper's candidate-only blocking (Algorithm 1).
    pub fn paper_blocking(mut self) -> Self {
        self.blocking = BlockingStrategy::CandidateOnly;
        self
    }

    /// Forces the reference bus into every candidate (the paper's §IV-E
    /// convention).
    pub fn with_reference_secured(mut self) -> Self {
        self.require_reference_secured = true;
        self
    }
}

/// A synthesized security architecture.
#[derive(Debug, Clone)]
pub struct SecurityArchitecture {
    /// Buses to secure (all their taken measurements become
    /// integrity-protected).
    pub secured_buses: Vec<BusId>,
    /// Candidate-selection/verification round trips performed.
    pub iterations: usize,
}

impl fmt::Display for SecurityArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "secure buses {{")?;
        for (i, b) in self.secured_buses.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", b.0 + 1)?;
        }
        write!(f, "}} ({} iterations)", self.iterations)
    }
}

/// Result of one synthesis run.
#[derive(Debug, Clone)]
pub enum SynthesisOutcome {
    /// An architecture satisfying the security requirements.
    Architecture(SecurityArchitecture),
    /// No bus set within the constraints blocks the attack model.
    NoSolution {
        /// Rounds explored before exhausting the candidate space.
        iterations: usize,
    },
    /// The iteration cap was hit before a conclusion.
    Inconclusive {
        /// Rounds performed.
        iterations: usize,
    },
}

impl SynthesisOutcome {
    /// The architecture, if one was found.
    pub fn architecture(&self) -> Option<&SecurityArchitecture> {
        match self {
            SynthesisOutcome::Architecture(a) => Some(a),
            _ => None,
        }
    }

    /// Whether an architecture was found.
    pub fn is_solution(&self) -> bool {
        matches!(self, SynthesisOutcome::Architecture(_))
    }
}

/// The Algorithm 1 synthesizer.
///
/// # Examples
///
/// ```
/// use sta_core::attack::AttackModel;
/// use sta_core::synthesis::{SynthesisConfig, Synthesizer};
/// use sta_grid::ieee14;
///
/// let sys = ieee14::system();
/// let synth = Synthesizer::new(&sys);
/// // A knowledge- and resource-limited attacker (paper Scenario 1).
/// let attacker = AttackModel::new(14)
///     .unknown_lines(20, &[2, 16])
///     .max_altered_measurements(12);
/// let outcome = synth.synthesize(&attacker, &SynthesisConfig::with_budget(4));
/// assert!(outcome.is_solution());
/// ```
#[derive(Debug)]
pub struct Synthesizer<'a> {
    system: &'a TestSystem,
    verifier: AttackVerifier,
    certify: CertifyLevel,
    profiler: Option<sta_smt::Profiler>,
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer over `system` with the default operating
    /// point.
    pub fn new(system: &'a TestSystem) -> Self {
        Synthesizer {
            system,
            verifier: AttackVerifier::new(system),
            certify: CertifyLevel::Off,
            profiler: None,
        }
    }

    /// Certifies every solver answer in the loop — both the candidate
    /// selection model and the attack verification calls.
    pub fn with_certify(mut self, level: CertifyLevel) -> Self {
        self.certify = level;
        self.verifier = self.verifier.with_certify(level);
        self
    }

    /// Attaches a span profiler to the CEGIS loop. Each round records an
    /// `iterate` span with a `select` child (the candidate-selection
    /// check) and the verifier's `verify` spans (base/delta encode,
    /// search, simplex self-time) nested alongside it.
    pub fn with_profiler(mut self, profiler: sta_smt::Profiler) -> Self {
        self.verifier = self.verifier.with_profiler(profiler.clone());
        self.profiler = Some(profiler);
        self
    }

    /// Selects the simplex engine for the loop's verification checks
    /// (the selection model is purely Boolean, so only the verifier's
    /// solver is affected; see [`sta_smt::SimplexMode`]).
    pub fn with_simplex(mut self, mode: sta_smt::SimplexMode) -> Self {
        self.verifier = self.verifier.with_simplex(mode);
        self
    }

    /// Runs Algorithm 1 for the given attack model and operator
    /// constraints.
    pub fn synthesize(
        &self,
        attacker: &AttackModel,
        config: &SynthesisConfig,
    ) -> SynthesisOutcome {
        let mut obs = SynthesisObservation::default();
        self.synthesize_observed(attacker, config, &mut obs)
    }

    /// Like [`Synthesizer::synthesize`], additionally returning the
    /// aggregated per-phase solver observability of the whole CEGIS loop
    /// (selection checks plus every verification round trip).
    pub fn synthesize_with_metrics(
        &self,
        attacker: &AttackModel,
        config: &SynthesisConfig,
    ) -> (SynthesisOutcome, SynthesisObservation) {
        let mut obs = SynthesisObservation::default();
        let outcome = self.synthesize_observed(attacker, config, &mut obs);
        (outcome, obs)
    }

    fn synthesize_observed(
        &self,
        attacker: &AttackModel,
        config: &SynthesisConfig,
        obs: &mut SynthesisObservation,
    ) -> SynthesisOutcome {
        let b = self.system.grid.num_buses();
        let mut selection = Solver::new();
        selection.set_certify(self.certify.max(attacker.certify));
        selection.set_incremental(config.incremental);
        if let Some(p) = &self.profiler {
            selection.set_profiler(p.clone());
        }
        let sb: Vec<BoolVar> = (0..b).map(|_| selection.new_bool()).collect();
        // Eq. 27: the budget.
        selection.assert_formula(&Formula::at_most(
            sb.iter().map(|&v| Formula::var(v)).collect(),
            config.max_secured_buses,
        ));
        // Eq. 29: operator exclusions.
        for bus in &config.unsecurable_buses {
            selection.assert_formula(&Formula::var(sb[bus.0]).not());
        }
        // §IV-E convention: the reference bus is always secured.
        if config.require_reference_secured {
            selection
                .assert_formula(&Formula::var(sb[self.system.reference_bus.0]));
        }
        // Eq. 30: no two buses adjacent through a taken flow meter.
        if config.adjacency_pruning {
            for (i, line) in self.system.grid.lines().iter().enumerate() {
                let l = self.system.grid.num_lines();
                let fwd_taken =
                    self.system.measurements.is_taken(MeasurementId(i));
                let bwd_taken =
                    self.system.measurements.is_taken(MeasurementId(l + i));
                if fwd_taken || bwd_taken {
                    selection.assert_formula(&Formula::or(vec![
                        Formula::var(sb[line.from.0]).not(),
                        Formula::var(sb[line.to.0]).not(),
                    ]));
                }
            }
        }

        // One live verification session for the whole loop: the attack
        // scenario is asserted once, and every candidate is layered on as
        // Eq. 28 assumptions, so the persistent core keeps its learned
        // clauses and warm simplex basis across rounds.
        let mut session = VerifySession::with_verifier(
            self.verifier.clone(),
            attacker.allow_topology_attack,
        );
        session.set_incremental(config.incremental);
        session.begin_scenario(attacker);
        let verify_budget = match attacker.timeout_ms {
            Some(ms) => Budget::with_timeout(Duration::from_millis(ms)),
            None => Budget::unlimited(),
        };

        let mut iterations = 0usize;
        loop {
            if let Some(cap) = config.max_iterations {
                if iterations >= cap {
                    return SynthesisOutcome::Inconclusive { iterations };
                }
            }
            iterations += 1;
            let _sp_iter = self.profiler.as_ref().map(|p| p.span("iterate"));
            let selection_result = {
                let _sp = self.profiler.as_ref().map(|p| p.span("select"));
                // Assumption-based check: under the incremental core the
                // selection solver's learned clauses survive across rounds
                // even as blocking clauses accumulate at the base level.
                selection.check_assuming(&[])
            };
            if let Some(stats) = selection.last_stats() {
                obs.record(stats);
            }
            let candidate: Vec<BusId> = match selection_result {
                SatResult::Unsat => {
                    return SynthesisOutcome::NoSolution { iterations };
                }
                // An exhausted budget on the selection model: undecided.
                SatResult::Unknown(_) => {
                    return SynthesisOutcome::Inconclusive { iterations };
                }
                SatResult::Sat(m) => (0..b)
                    .filter(|&j| m.bool_value(sb[j]))
                    .map(BusId)
                    .collect(),
            };
            // Verify: does the attack model still succeed with the
            // candidate secured? The candidate rides in as assumptions on
            // the live scenario rather than a fresh solver per round.
            let report = session.verify_assuming(&candidate, &[], &verify_budget);
            obs.record(&report.stats);
            let outcome = report.outcome;
            if outcome.is_unknown() {
                // A timed-out verification can certify nothing about the
                // candidate — treating it as "blocked" would be unsound.
                return SynthesisOutcome::Inconclusive { iterations };
            }
            let Some(vector) = outcome.vector() else {
                return SynthesisOutcome::Architecture(SecurityArchitecture {
                    secured_buses: candidate,
                    iterations,
                });
            };
            match config.blocking {
                BlockingStrategy::CounterexampleHitting => {
                    // A found attack's validity depends only on its own
                    // altered measurements being unprotected, so *any*
                    // architecture disjoint from its compromised-bus set
                    // admits the same attack: each counterexample yields
                    // the sound clause "secure at least one of its buses".
                    // Chain further counterexamples by provisionally
                    // securing each attack's buses and re-verifying,
                    // harvesting several clauses per candidate round. The
                    // growing secured set stays a pure assumption delta on
                    // the same live scenario.
                    let mut secured: Vec<BusId> = candidate.clone();
                    let mut buses = vector.compromised_buses.clone();
                    for round in 0..config.counterexamples_per_round.max(1) {
                        selection.assert_formula(&Formula::or(
                            buses
                                .iter()
                                .filter(|bus| {
                                    !config.unsecurable_buses.contains(bus)
                                })
                                .map(|bus| Formula::var(sb[bus.0]))
                                .collect(),
                        ));
                        if round + 1 == config.counterexamples_per_round {
                            break;
                        }
                        secured.extend(buses.iter().copied());
                        let chained_report =
                            session.verify_assuming(&secured, &[], &verify_budget);
                        obs.record(&chained_report.stats);
                        match chained_report.outcome.vector() {
                            Some(v) => buses = v.compromised_buses.clone(),
                            None => break,
                        }
                    }
                }
                BlockingStrategy::CandidateOnly => {
                    // Block the candidate and every subset: require some
                    // bus outside it.
                    let in_candidate: Vec<bool> = {
                        let mut v = vec![false; b];
                        for bus in &candidate {
                            v[bus.0] = true;
                        }
                        v
                    };
                    selection.assert_formula(&Formula::or(
                        (0..b)
                            .filter(|&j| !in_candidate[j])
                            .filter(|&j| {
                                !config.unsecurable_buses.contains(&BusId(j))
                            })
                            .map(|j| Formula::var(sb[j]))
                            .collect(),
                    ));
                }
            }
        }
    }

    /// Applies an architecture to a copy of the system's measurement
    /// configuration (for downstream what-if analysis).
    pub fn apply(
        &self,
        architecture: &SecurityArchitecture,
    ) -> MeasurementConfig {
        self.system
            .measurements
            .with_secured_buses(&self.system.grid, &architecture.secured_buses)
    }

    /// Measurement-granular variant of Algorithm 1 — the paper notes that
    /// "similar mechanism can be used for synthesizing security
    /// architecture with respect to measurements only" (§IV-A).
    ///
    /// Selects at most `max_secured` individual *taken, unsecured*
    /// measurements whose protection blocks `attacker`, using the same
    /// counterexample-hitting refinement (any architecture disjoint from
    /// a found attack's altered measurements admits that same attack).
    /// Returns the measurement set and the number of iterations, or
    /// `None` when no set within the budget works.
    pub fn synthesize_measurements(
        &self,
        attacker: &AttackModel,
        max_secured: usize,
    ) -> Option<(Vec<MeasurementId>, usize)> {
        let m = self.system.grid.num_potential_measurements();
        // Only taken, not-already-secured measurements are candidates.
        let candidates: Vec<MeasurementId> = (0..m)
            .map(MeasurementId)
            .filter(|&id| {
                self.system.measurements.is_taken(id)
                    && !self.system.measurements.is_secured(id)
            })
            .collect();
        let mut selection = Solver::new();
        selection.set_certify(self.certify.max(attacker.certify));
        let sm: Vec<BoolVar> =
            candidates.iter().map(|_| selection.new_bool()).collect();
        let index_of: std::collections::BTreeMap<MeasurementId, usize> = candidates
            .iter()
            .enumerate()
            .map(|(k, &id)| (id, k))
            .collect();
        selection.assert_formula(&Formula::at_most(
            sm.iter().map(|&v| Formula::var(v)).collect(),
            max_secured,
        ));
        // Same live-session discipline as the bus-level loop: one asserted
        // scenario, per-round measurement sets as assumption deltas.
        let mut session = VerifySession::with_verifier(
            self.verifier.clone(),
            attacker.allow_topology_attack,
        );
        session.begin_scenario(attacker);
        let verify_budget = match attacker.timeout_ms {
            Some(ms) => Budget::with_timeout(Duration::from_millis(ms)),
            None => Budget::unlimited(),
        };
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let chosen: Vec<MeasurementId> = match selection.check_assuming(&[]) {
                sta_smt::SatResult::Unsat | sta_smt::SatResult::Unknown(_) => {
                    return None
                }
                sta_smt::SatResult::Sat(model) => candidates
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| model.bool_value(sm[*k]))
                    .map(|(_, &id)| id)
                    .collect(),
            };
            let outcome = session.verify_assuming(&[], &chosen, &verify_budget).outcome;
            if outcome.is_unknown() {
                // Undecided verification: no sound conclusion either way.
                return None;
            }
            match outcome.vector() {
                None => return Some((chosen, iterations)),
                Some(vector) => {
                    // Hit at least one altered measurement of the attack.
                    selection.assert_formula(&Formula::or(
                        vector
                            .alterations
                            .iter()
                            .filter_map(|a| index_of.get(&a.measurement))
                            .map(|&k| Formula::var(sm[k]))
                            .collect(),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::StateTarget;
    use sta_grid::ieee14;

    #[test]
    fn zero_budget_fails_against_real_attacker() {
        let sys = ieee14::system();
        let synth = Synthesizer::new(&sys);
        let attacker = AttackModel::new(14);
        let outcome = synth.synthesize(&attacker, &SynthesisConfig::with_budget(0));
        assert!(!outcome.is_solution());
    }

    #[test]
    fn architecture_blocks_the_attack_model() {
        let sys = ieee14::system_unsecured();
        let synth = Synthesizer::new(&sys);
        // Limited attacker: one specific target, modest resources.
        let attacker = AttackModel::new(14)
            .target(sta_grid::BusId(11), StateTarget::MustChange)
            .max_altered_measurements(8);
        // Meaningful setup: the attack succeeds without protection.
        assert!(AttackVerifier::new(&sys).verify(&attacker).is_feasible());
        let outcome = synth.synthesize(&attacker, &SynthesisConfig::with_budget(3));
        let arch = outcome.architecture().expect("solution within 3 buses");
        assert!(arch.secured_buses.len() <= 3);
        assert!(!arch.secured_buses.is_empty());
        // Re-verify independently.
        let verifier = AttackVerifier::new(&sys);
        let hardened = attacker.clone().secure_buses(&arch.secured_buses);
        assert!(!verifier.verify(&hardened).is_feasible());
    }

    #[test]
    fn unsecurable_buses_never_selected() {
        let sys = ieee14::system();
        let synth = Synthesizer::new(&sys);
        let attacker = AttackModel::new(14)
            .target(sta_grid::BusId(11), StateTarget::MustChange)
            .max_altered_measurements(8);
        let mut config = SynthesisConfig::with_budget(4);
        config.unsecurable_buses = vec![sta_grid::BusId(5)];
        if let SynthesisOutcome::Architecture(arch) =
            synth.synthesize(&attacker, &config)
        {
            assert!(!arch.secured_buses.contains(&sta_grid::BusId(5)));
        }
    }

    #[test]
    fn measurement_level_synthesis_blocks_and_is_minimal_ish() {
        let sys = ieee14::system_unsecured();
        let synth = Synthesizer::new(&sys);
        let attacker = AttackModel::new(14);
        // Bobba: 13 basic measurements always suffice; the synthesized
        // set must also block and fit the same budget.
        let (set, iters) = synth
            .synthesize_measurements(&attacker, 13)
            .expect("13 measurements suffice (Bobba)");
        assert!(set.len() <= 13);
        assert!(iters >= 1);
        let verifier = AttackVerifier::new(&sys);
        let mut hardened = attacker.clone();
        hardened.extra_secured_measurements.extend(set.iter().copied());
        assert!(!verifier.verify(&hardened).is_feasible());
        // Bobba et al. necessity (fewer than n−1 secured measurements
        // never blocks an unconstrained attacker), exhaustively on a
        // small grid where the no-solution proof is cheap: a 4-bus ring
        // has n−1 = 3, so a 2-measurement budget must fail.
        let ring = sta_grid::Grid::new(
            4,
            vec![
                sta_grid::Line::new(sta_grid::BusId(0), sta_grid::BusId(1), 2.0),
                sta_grid::Line::new(sta_grid::BusId(1), sta_grid::BusId(2), 3.0),
                sta_grid::Line::new(sta_grid::BusId(2), sta_grid::BusId(3), 4.0),
                sta_grid::Line::new(sta_grid::BusId(0), sta_grid::BusId(3), 5.0),
            ],
        );
        let tiny = sta_grid::TestSystem::fully_metered("ring", ring);
        let tiny_synth = Synthesizer::new(&tiny);
        let tiny_attacker = AttackModel::new(4);
        assert!(tiny_synth.synthesize_measurements(&tiny_attacker, 3).is_some());
        assert!(tiny_synth.synthesize_measurements(&tiny_attacker, 2).is_none());
    }

    #[test]
    fn strict_knowledge_is_at_least_as_restrictive() {
        let sys = ieee14::system_unsecured();
        let verifier = AttackVerifier::new(&sys);
        // Target a state adjacent to an unknown line: strict semantics
        // must refuse whenever the lax semantics refuses, and may refuse
        // more.
        for target in 1..14 {
            let lax = AttackModel::new(14)
                .unknown_lines(20, &[2, 6, 16])
                .target(sta_grid::BusId(target), StateTarget::MustChange);
            let strict = lax.clone().with_strict_knowledge();
            let lax_ok = verifier.verify(&lax).is_feasible();
            let strict_ok = verifier.verify(&strict).is_feasible();
            assert!(
                lax_ok || !strict_ok,
                "strict feasible but lax infeasible at state {}",
                target + 1
            );
        }
    }

    /// A profiled synthesis run yields the CEGIS span tree: per-round
    /// `iterate` spans containing a `select` child (candidate check) and
    /// the verifier's `verify` spans, with solver phases nested below.
    #[test]
    fn profiler_captures_cegis_span_tree() {
        let sys = ieee14::system_unsecured();
        let profiler = sta_smt::Profiler::new();
        let synth = Synthesizer::new(&sys).with_profiler(profiler.clone());
        let attacker = AttackModel::new(14)
            .target(sta_grid::BusId(11), StateTarget::MustChange)
            .max_altered_measurements(8);
        let outcome = synth.synthesize(&attacker, &SynthesisConfig::with_budget(3));
        assert!(outcome.is_solution());
        let iterations = outcome.architecture().unwrap().iterations as u64;
        let roots = profiler.snapshot();
        let iterate = roots
            .iter()
            .find(|n| n.name == "iterate")
            .expect("iterate span");
        assert_eq!(iterate.count, iterations);
        let select = iterate
            .children
            .iter()
            .find(|n| n.name == "select")
            .expect("select child");
        assert_eq!(select.count, iterations);
        let verify = iterate
            .children
            .iter()
            .find(|n| n.name == "verify")
            .expect("verify child");
        assert!(verify.count >= iterations);
        // Solver phases nest under both the selection check and the
        // verification calls.
        for parent in [select, verify] {
            assert!(
                parent.children.iter().any(|n| n.name == "search"),
                "no search span under {}",
                parent.name
            );
        }
    }

    /// The incremental loop (live cores, assumption deltas) and the
    /// clone-per-check baseline must agree on the *verdict*: an
    /// architecture exists at this budget or it does not. The bus sets may
    /// differ — a warm core walks a different (equally sound)
    /// counterexample path than a cold one, exactly as with MiniSat-style
    /// incremental solving — so each mode's architecture is checked
    /// against the attack model independently. This is the
    /// `--incremental on|off` A/B soundness pin.
    #[test]
    fn incremental_and_clone_per_check_synthesis_agree() {
        let sys = ieee14::system_unsecured();
        let synth = Synthesizer::new(&sys);
        let verifier = AttackVerifier::new(&sys);
        let attackers = [
            AttackModel::new(14)
                .target(sta_grid::BusId(11), StateTarget::MustChange)
                .max_altered_measurements(8),
            AttackModel::new(14)
                .target(sta_grid::BusId(4), StateTarget::MustChange)
                .max_altered_measurements(10)
                .max_compromised_buses(4),
        ];
        for attacker in &attackers {
            for budget in [2usize, 3] {
                let warm = synth.synthesize(
                    attacker,
                    &SynthesisConfig::with_budget(budget),
                );
                let cold = synth.synthesize(
                    attacker,
                    &SynthesisConfig::with_budget(budget).with_incremental(false),
                );
                assert_eq!(
                    warm.is_solution(),
                    cold.is_solution(),
                    "warm {warm:?} vs cold {cold:?} at budget {budget}"
                );
                for outcome in [&warm, &cold] {
                    if let Some(arch) = outcome.architecture() {
                        assert!(arch.secured_buses.len() <= budget);
                        let hardened =
                            attacker.clone().secure_buses(&arch.secured_buses);
                        assert!(
                            !verifier.verify(&hardened).is_feasible(),
                            "synthesized architecture fails to block: {arch}"
                        );
                    }
                }
            }
        }
    }

    /// The warm loop actually exercises the persistent core: after the
    /// first round, verification checks report base-cache reuse and clause
    /// retention in the aggregated metrics.
    #[test]
    fn incremental_synthesis_reports_core_reuse() {
        let sys = ieee14::system_unsecured();
        let synth = Synthesizer::new(&sys);
        let attacker = AttackModel::new(14)
            .target(sta_grid::BusId(11), StateTarget::MustChange)
            .max_altered_measurements(8);
        let (outcome, obs) =
            synth.synthesize_with_metrics(&attacker, &SynthesisConfig::with_budget(3));
        assert!(outcome.is_solution());
        let iterations = outcome.architecture().unwrap().iterations;
        if iterations > 1 {
            assert!(
                obs.metrics.retained_clauses > 0,
                "multi-round warm loop retained no learned clauses: {:?}",
                obs.metrics
            );
        }
        // The cold baseline never reports retention.
        let (_, cold_obs) = synth.synthesize_with_metrics(
            &attacker,
            &SynthesisConfig::with_budget(3).with_incremental(false),
        );
        assert_eq!(cold_obs.metrics.retained_clauses, 0);
    }

    #[test]
    fn iteration_cap_returns_inconclusive() {
        let sys = ieee14::system();
        let synth = Synthesizer::new(&sys);
        let attacker = AttackModel::new(14);
        let mut config = SynthesisConfig::with_budget(1);
        config.max_iterations = Some(1);
        // Budget 1 can't stop an unconstrained attacker; with a 1-round
        // cap we must get Inconclusive or NoSolution, never a solution.
        let outcome = synth.synthesize(&attacker, &config);
        assert!(!outcome.is_solution());
    }
}
