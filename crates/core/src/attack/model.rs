//! The attack scenario description: the paper's attack attributes.
//!
//! An [`AttackModel`] bundles everything §III calls an *attack attribute*:
//! the adversary's admittance knowledge (`bd`), resource limits on
//! simultaneously altered measurements (`T_CZ`) and compromised substations
//! (`T_CB`), the attack goal (per-state targets plus required state-change
//! differences), and whether topology poisoning is available. Accessibility
//! (`az`) and existing protection (`sz`) come from the system's
//! [`sta_grid::MeasurementConfig`], optionally overridden here.

use sta_grid::BusId;
use sta_smt::CertifyLevel;

/// The attacker's goal for one state variable (bus angle estimate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StateTarget {
    /// The estimate of this state must be corrupted (`cx_j`, Eq. 5):
    /// `Δθ_j ≠ 0`.
    MustChange,
    /// The estimate must remain correct: `Δθ_j = 0` (the paper's attack
    /// objective 2: "state 12 only, i.e. no other states will be
    /// affected").
    MustNotChange,
    /// Unspecified — the attack may or may not touch it.
    #[default]
    Free,
}

/// A complete UFDI attack scenario to check for feasibility.
///
/// # Examples
///
/// ```
/// use sta_core::attack::{AttackModel, StateTarget};
/// use sta_grid::BusId;
///
/// let model = AttackModel::new(14)
///     .target(BusId(8), StateTarget::MustChange)
///     .target(BusId(9), StateTarget::MustChange)
///     .require_different_change(BusId(8), BusId(9))
///     .max_altered_measurements(16)
///     .max_compromised_buses(7);
/// assert_eq!(model.max_altered_measurements, Some(16));
/// ```
#[derive(Debug, Clone)]
pub struct AttackModel {
    /// Per-state goal; index = bus index.
    pub targets: Vec<StateTarget>,
    /// Pairs whose state changes must differ (`Δθ_a ≠ Δθ_b`, Eq. 26).
    pub different_changes: Vec<(BusId, BusId)>,
    /// Admittance knowledge per line (`bd_i`, Eq. 17); `None` = full
    /// knowledge.
    pub known_admittances: Option<Vec<bool>>,
    /// `T_CZ`: maximum simultaneously altered measurements (Eq. 22).
    pub max_altered_measurements: Option<usize>,
    /// `T_CB`: maximum simultaneously compromised substations (Eq. 24).
    pub max_compromised_buses: Option<usize>,
    /// Whether the adversary can poison breaker-status telemetry (line
    /// exclusion/inclusion attacks, §III-C/E).
    pub allow_topology_attack: bool,
    /// Extra measurements to treat as secured on top of the system
    /// configuration (used by the synthesis loop and case studies).
    pub extra_secured_measurements: Vec<sta_grid::MeasurementId>,
    /// Extra buses whose every measurement is treated as secured (Eq. 28).
    pub extra_secured_buses: Vec<BusId>,
    /// Measurements to treat as inaccessible (`¬az_i`) on top of the
    /// system configuration.
    pub inaccessible_measurements: Vec<sta_grid::MeasurementId>,
    /// Strict knowledge semantics: an unknown-admittance line's measured
    /// flow must stay *unchanged* (`ΔPL_i = 0`), not merely unaltered —
    /// the attacker cannot compute the incident-bus adjustments a change
    /// through an unknown line would require. The paper's Eq. 17 only
    /// gates the line's own flow meters (the default); this documented
    /// stricter reading is available for sensitivity analysis.
    pub strict_knowledge: bool,
    /// Alteration patterns ruled out: the witness's set of altered
    /// measurements must differ from each listed set. Used by
    /// [`crate::attack::AttackVerifier::enumerate`] to produce distinct
    /// attack vectors.
    pub blocked_alteration_sets: Vec<Vec<sta_grid::MeasurementId>>,
    /// Minimum certification level for checks of this scenario; the
    /// verifier uses the stricter of this and its own configured level.
    pub certify: CertifyLevel,
    /// Wall-clock deadline for the feasibility check, in milliseconds;
    /// `None` = unlimited. When the deadline passes before the solver
    /// reaches a verdict, verification returns
    /// [`crate::attack::AttackOutcome::Unknown`] — which is *not*
    /// infeasibility.
    pub timeout_ms: Option<u64>,
}

impl AttackModel {
    /// An unconstrained scenario over `num_buses` states: full knowledge,
    /// unlimited resources, no targets, no topology attacks.
    pub fn new(num_buses: usize) -> Self {
        AttackModel {
            targets: vec![StateTarget::Free; num_buses],
            different_changes: Vec::new(),
            known_admittances: None,
            max_altered_measurements: None,
            max_compromised_buses: None,
            allow_topology_attack: false,
            extra_secured_measurements: Vec::new(),
            extra_secured_buses: Vec::new(),
            inaccessible_measurements: Vec::new(),
            strict_knowledge: false,
            blocked_alteration_sets: Vec::new(),
            certify: CertifyLevel::Off,
            timeout_ms: None,
        }
    }

    /// Bounds the feasibility check to `ms` milliseconds of wall clock.
    pub fn with_timeout_ms(mut self, ms: u64) -> Self {
        self.timeout_ms = Some(ms);
        self
    }

    /// Requires at least this certification level when the scenario is
    /// checked.
    pub fn with_certify(mut self, level: CertifyLevel) -> Self {
        self.certify = level;
        self
    }

    /// Enables the strict reading of the knowledge constraint (see the
    /// [`AttackModel::strict_knowledge`] field docs).
    pub fn with_strict_knowledge(mut self) -> Self {
        self.strict_knowledge = true;
        self
    }

    /// Sets the goal for one state.
    ///
    /// # Panics
    /// Panics if `bus` is out of range.
    pub fn target(mut self, bus: BusId, goal: StateTarget) -> Self {
        self.targets[bus.0] = goal;
        self
    }

    /// Requires `Δθ_a ≠ Δθ_b` (Eq. 26).
    pub fn require_different_change(mut self, a: BusId, b: BusId) -> Self {
        self.different_changes.push((a, b));
        self
    }

    /// Sets the admittance-knowledge vector (`bd`).
    pub fn knowledge(mut self, known: Vec<bool>) -> Self {
        self.known_admittances = Some(known);
        self
    }

    /// Marks the admittances of the given (0-based) lines unknown.
    ///
    /// # Panics
    /// Panics if any index is `≥ num_lines`.
    pub fn unknown_lines(mut self, num_lines: usize, unknown: &[usize]) -> Self {
        let mut bd = self
            .known_admittances
            .unwrap_or_else(|| vec![true; num_lines]);
        for &i in unknown {
            bd[i] = false;
        }
        self.known_admittances = Some(bd);
        self
    }

    /// Sets `T_CZ`.
    pub fn max_altered_measurements(mut self, t_cz: usize) -> Self {
        self.max_altered_measurements = Some(t_cz);
        self
    }

    /// Sets `T_CB`.
    pub fn max_compromised_buses(mut self, t_cb: usize) -> Self {
        self.max_compromised_buses = Some(t_cb);
        self
    }

    /// Enables topology poisoning.
    pub fn with_topology_attack(mut self) -> Self {
        self.allow_topology_attack = true;
        self
    }

    /// Adds an extra secured measurement.
    pub fn secure_measurement(mut self, id: sta_grid::MeasurementId) -> Self {
        self.extra_secured_measurements.push(id);
        self
    }

    /// Adds extra secured buses (all their measurements become secured).
    pub fn secure_buses(mut self, buses: &[BusId]) -> Self {
        self.extra_secured_buses.extend_from_slice(buses);
        self
    }

    /// Marks a measurement inaccessible to the attacker.
    pub fn deny_access(mut self, id: sta_grid::MeasurementId) -> Self {
        self.inaccessible_measurements.push(id);
        self
    }

    /// Marks every measurement residing at `bus` inaccessible — a
    /// physically hardened substation the attacker cannot enter (the
    /// paper's accessibility attribute at substation granularity).
    pub fn deny_bus_access(mut self, grid: &sta_grid::Grid, bus: BusId) -> Self {
        for m in 0..grid.num_potential_measurements() {
            let id = sta_grid::MeasurementId(m);
            if sta_grid::MeasurementConfig::bus_of(grid, id) == bus {
                self.inaccessible_measurements.push(id);
            }
        }
        self
    }

    /// Buses whose estimate the scenario requires to be corrupted.
    pub fn must_change_states(&self) -> impl Iterator<Item = BusId> + '_ {
        self.targets
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == StateTarget::MustChange)
            .map(|(j, _)| BusId(j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let m = AttackModel::new(5)
            .target(BusId(2), StateTarget::MustChange)
            .target(BusId(4), StateTarget::MustNotChange)
            .require_different_change(BusId(1), BusId(2))
            .max_altered_measurements(4)
            .max_compromised_buses(2)
            .with_topology_attack();
        assert_eq!(m.targets[2], StateTarget::MustChange);
        assert_eq!(m.targets[4], StateTarget::MustNotChange);
        assert_eq!(m.targets[0], StateTarget::Free);
        assert_eq!(m.different_changes, vec![(BusId(1), BusId(2))]);
        assert!(m.allow_topology_attack);
        let musts: Vec<BusId> = m.must_change_states().collect();
        assert_eq!(musts, vec![BusId(2)]);
    }

    #[test]
    fn unknown_lines_builds_knowledge_vector() {
        let m = AttackModel::new(3).unknown_lines(6, &[1, 4]);
        let bd = m.known_admittances.unwrap();
        assert_eq!(bd, vec![true, false, true, true, false, true]);
    }
}
