//! Incremental verification sessions: many scenarios, one base encoding.
//!
//! A sweep over attack-model variants (the paper's Figs. 4–5 grids, the
//! campaign engine's job lists) re-verifies the *same* test system under
//! different attributes. Rebuilding the full §III encoding for every
//! variant wastes most of the work: the line semantics, alteration
//! linking, protection and `cz → cb` constraints depend only on the
//! system. A [`VerifySession`] asserts that scenario-independent base
//! once, then runs each variant inside a solver push/pop scope, letting
//! [`sta_smt::Solver`]'s incremental base cache reuse the encoded CNF and
//! simplex tableau across checks.
//!
//! Sessions are keyed by topology support: a base built with `el`/`il`
//! variables serves both topology and non-topology scenarios (the latter
//! pin the variables false), but the extra variables and conditional
//! constraints make every check in the session pay the topology encoding.
//! Callers that mix both kinds heavily should hold one session per kind —
//! the campaign worker pool does exactly that.

use crate::attack::model::AttackModel;
use crate::attack::vector::{AttackOutcome, VerificationReport};
use crate::attack::verifier::{AttackEncoding, AttackVerifier};
use sta_grid::{BusId, MeasurementId, TestSystem};
use sta_smt::{Budget, SatResult, Solver};
use std::sync::Arc;
use std::time::Duration;

/// A reusable verification context over one test system.
///
/// # Examples
///
/// ```
/// use sta_core::attack::{AttackModel, StateTarget, VerifySession};
/// use sta_grid::{ieee14, BusId};
///
/// let sys = ieee14::system();
/// let mut session = VerifySession::new(&sys, false);
/// let open = AttackModel::new(14).target(BusId(11), StateTarget::MustChange);
/// let blocked = open.clone().max_altered_measurements(0);
/// assert!(session.verify(&open).outcome.is_feasible());
/// assert!(!session.verify(&blocked).outcome.is_feasible());
/// ```
#[derive(Debug)]
pub struct VerifySession {
    verifier: AttackVerifier,
    solver: Solver,
    enc: AttackEncoding,
    /// Checks that reused the solver's cached base encoding.
    cache_hits: u64,
    /// Checks that (re)built the base encoding from scratch.
    cache_misses: u64,
}

impl VerifySession {
    /// Builds a session over `system` with the default operating point.
    /// With `topology` set, the base encoding carries the `el`/`il`
    /// machinery so scenarios may enable topology poisoning.
    ///
    /// The session owns its case data (shared via `Arc` internally), so
    /// it can outlive the borrow of `system` — a cache of live sessions
    /// is free to keep it warm across call stacks and threads.
    pub fn new(system: &TestSystem, topology: bool) -> Self {
        Self::with_verifier(AttackVerifier::new(system), topology)
    }

    /// Builds a session over an already-shared system without cloning
    /// the case data.
    pub fn shared(system: Arc<TestSystem>, topology: bool) -> Self {
        Self::with_verifier(AttackVerifier::shared(system), topology)
    }

    /// Builds a session around a configured verifier (operating point,
    /// certification level).
    pub fn with_verifier(verifier: AttackVerifier, topology: bool) -> Self {
        let mut solver = Solver::new();
        solver.set_certify(verifier.certify_level());
        // Inherit the verifier's observability configuration so a
        // profiled campaign worker sees session checks too.
        verifier.configure_solver(&mut solver);
        let enc = verifier.encode_base(&mut solver, topology);
        VerifySession { verifier, solver, enc, cache_hits: 0, cache_misses: 0 }
    }

    /// Attaches a span profiler to the session's solver: each
    /// [`VerifySession::verify`] records a `verify` span whose `encode`
    /// child splits into `base` (cache extension) vs `delta` (the
    /// scenario's scoped constraints) — the base-reuse story in time.
    pub fn set_profiler(&mut self, profiler: sta_smt::Profiler) {
        self.verifier.set_profiler(profiler.clone());
        self.solver.set_profiler(profiler);
    }

    /// Enables progress-timeline sampling on the session's checks.
    pub fn set_progress_sampling(&mut self, on: bool) {
        self.verifier.set_progress_sampling(on);
        self.solver.set_progress_sampling(on);
    }

    /// Chooses between the solver's persistent incremental core (default)
    /// and the clone-per-check fallback for
    /// [`VerifySession::verify_assuming`] checks (see
    /// [`sta_smt::Solver::set_incremental`]). [`VerifySession::verify`]
    /// always uses the clone-per-check path either way.
    pub fn set_incremental(&mut self, on: bool) {
        self.solver.set_incremental(on);
    }

    /// Selects the simplex engine for the session's checks (see
    /// [`sta_smt::Solver::set_simplex_mode`]). Changing the mode drops the
    /// solver's cached base encoding, so the next check rebuilds it.
    pub fn set_simplex_mode(&mut self, mode: sta_smt::SimplexMode) {
        self.verifier.set_simplex_mode(mode);
        self.solver.set_simplex_mode(mode);
    }

    /// Checks so far that reused the cached base encoding (the session's
    /// raison d'être — a healthy sweep shows one miss, then all hits).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Checks so far that built (or rebuilt) the base encoding.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// The underlying verifier.
    pub fn verifier(&self) -> &AttackVerifier {
        &self.verifier
    }

    /// Whether the base encoding supports topology-attack scenarios.
    pub fn supports_topology(&self) -> bool {
        self.enc.topology
    }

    /// Verifies one scenario, honoring its [`AttackModel::timeout_ms`].
    ///
    /// # Panics
    /// Panics on scenario/system shape mismatches and on scenarios that
    /// enable topology attacks in a session built without them (see
    /// [`VerifySession::new`]).
    pub fn verify(&mut self, model: &AttackModel) -> VerificationReport {
        let budget = match model.timeout_ms {
            Some(ms) => Budget::with_timeout(Duration::from_millis(ms)),
            None => Budget::unlimited(),
        };
        self.verify_with_budget(model, &budget)
    }

    /// Verifies one scenario under an explicit budget. The scenario's
    /// constraints live in a push/pop scope, so the session is immediately
    /// reusable afterwards — including after an `Unknown` verdict.
    ///
    /// # Panics
    /// See [`VerifySession::verify`].
    pub fn verify_with_budget(
        &mut self,
        model: &AttackModel,
        budget: &Budget,
    ) -> VerificationReport {
        let _sp = self
            .verifier
            .profiler()
            .map(|p| p.span("verify"));
        self.solver
            .set_certify(self.verifier.certify_level().max(model.certify));
        self.solver.push();
        self.verifier
            .assert_scenario(&mut self.solver, &self.enc, model);
        self.solver.set_budget(budget.clone());
        let result = self.solver.check();
        let stats = self.solver.last_stats().cloned().unwrap_or_default();
        if stats.base_cache_hit {
            self.cache_hits += 1;
        } else {
            self.cache_misses += 1;
        }
        let outcome = match result {
            SatResult::Unsat => AttackOutcome::Infeasible,
            SatResult::Unknown(why) => AttackOutcome::Unknown(why),
            SatResult::Sat(m) => AttackOutcome::Feasible(Box::new(
                self.verifier.extract_vector(&self.enc, &m),
            )),
        };
        self.solver.set_budget(Budget::unlimited());
        // The matching push is at the top of this method.
        let popped = self.solver.pop();
        debug_assert!(popped.is_ok());
        VerificationReport { outcome, stats }
    }

    /// Opens a scenario scope for assumption-based re-verification:
    /// asserts `model` into a scope and leaves it open. Subsequent
    /// [`VerifySession::verify_assuming`] calls re-check that scenario
    /// under secured-set deltas expressed as solver assumptions, so the
    /// persistent incremental core keeps its learned clauses and warm
    /// simplex basis across calls. Close with
    /// [`VerifySession::end_scenario`].
    ///
    /// # Panics
    /// See [`VerifySession::verify`] for the shape-mismatch panics.
    pub fn begin_scenario(&mut self, model: &AttackModel) {
        self.solver
            .set_certify(self.verifier.certify_level().max(model.certify));
        // A sticky scope: the live core encodes the scenario unguarded
        // (full root simplification — no activation-literal tax on the
        // first search), trading surgical retraction for a core rebuild
        // when `end_scenario` pops.
        self.solver.push_sticky();
        self.verifier
            .assert_scenario(&mut self.solver, &self.enc, model);
    }

    /// Re-verifies the open scenario with the given *extra* secured buses
    /// and measurements layered on as per-call assumptions (Eq. 28
    /// deltas). Must be called between [`VerifySession::begin_scenario`]
    /// and [`VerifySession::end_scenario`]; the deltas are retracted
    /// automatically when the call returns, whatever the verdict.
    pub fn verify_assuming(
        &mut self,
        extra_secured_buses: &[BusId],
        extra_secured_measurements: &[MeasurementId],
        budget: &Budget,
    ) -> VerificationReport {
        let _sp = self.verifier.profiler().map(|p| p.span("verify"));
        let assumptions = self.verifier.secured_delta_assumptions(
            &self.enc,
            extra_secured_buses,
            extra_secured_measurements,
        );
        self.solver.set_budget(budget.clone());
        let result = self.solver.check_assuming(&assumptions);
        let stats = self.solver.last_stats().cloned().unwrap_or_default();
        if stats.base_cache_hit {
            self.cache_hits += 1;
        } else {
            self.cache_misses += 1;
        }
        let outcome = match result {
            SatResult::Unsat => AttackOutcome::Infeasible,
            SatResult::Unknown(why) => AttackOutcome::Unknown(why),
            SatResult::Sat(m) => AttackOutcome::Feasible(Box::new(
                self.verifier.extract_vector(&self.enc, &m),
            )),
        };
        self.solver.set_budget(Budget::unlimited());
        VerificationReport { outcome, stats }
    }

    /// Closes the scope opened by [`VerifySession::begin_scenario`],
    /// retiring the scenario's constraints from the persistent core. The
    /// session is then ready for another scenario (or plain
    /// [`VerifySession::verify`] calls).
    ///
    /// # Panics
    /// Panics if no scenario scope is open.
    pub fn end_scenario(&mut self) {
        self.solver
            .pop()
            .unwrap_or_else(|e| panic!("end_scenario without begin_scenario: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackVerifier, StateTarget};
    use sta_grid::{ieee14, BusId, MeasurementId};

    /// Sessions own their case data: one may be built from a short-lived
    /// borrow, moved to another thread, and used after the original
    /// system is gone — the contract the service layer's warm-session
    /// cache depends on.
    #[test]
    fn session_outlives_its_source_borrow_and_crosses_threads() {
        fn assert_send<T: Send>(v: T) -> T {
            v
        }
        let mut session = {
            let sys = ieee14::system();
            VerifySession::new(&sys, false)
        };
        let open = AttackModel::new(14).target(BusId(11), StateTarget::MustChange);
        assert!(session.verify(&open).outcome.is_feasible());
        let mut session = assert_send(session);
        let handle = std::thread::spawn(move || {
            let report = session.verify(&open);
            (report.outcome.is_feasible(), report.stats.base_cache_hit)
        });
        let (feasible, warm) = handle.join().expect("worker thread");
        assert!(feasible);
        assert!(warm, "the moved session must keep its warm base encoding");
    }

    /// Regression: a scenario carrying `timeout-ms` = `u64::MAX` (an
    /// unvalidated client value) used to overflow `Instant` arithmetic in
    /// `Budget::with_timeout` and panic the worker. It must behave as "no
    /// deadline" and verify normally.
    #[test]
    fn huge_scenario_timeout_does_not_panic_the_session() {
        let sys = ieee14::system();
        let mut session = VerifySession::new(&sys, false);
        let model = AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .with_timeout_ms(u64::MAX);
        let report = session.verify(&model);
        assert!(report.outcome.is_feasible());
    }

    /// Session verdicts must agree with one-shot verification across a
    /// mixed sweep of variants.
    #[test]
    fn session_matches_one_shot_verdicts() {
        let sys = ieee14::system();
        let mut session = VerifySession::new(&sys, false);
        let one_shot = AttackVerifier::new(&sys);
        let variants = [
            AttackModel::new(14),
            AttackModel::new(14).target(BusId(11), StateTarget::MustChange),
            AttackModel::new(14).max_altered_measurements(0),
            AttackModel::new(14)
                .target(BusId(11), StateTarget::MustChange)
                .max_altered_measurements(10)
                .max_compromised_buses(4),
            AttackModel::new(14)
                .target(BusId(0), StateTarget::MustChange),
            AttackModel::new(14).unknown_lines(20, &[2, 16]),
        ];
        for model in &variants {
            let incremental = session.verify(model).outcome.is_feasible();
            let fresh = one_shot.verify(model).is_feasible();
            assert_eq!(incremental, fresh, "{model:?}");
        }
    }

    /// A topology-capable session must serve plain scenarios (pinning
    /// el/il false) with unchanged verdicts, and still find topology
    /// attacks when asked.
    #[test]
    fn topology_session_serves_both_scenario_kinds() {
        let sys = ieee14::system_unsecured();
        let mut session = VerifySession::new(&sys, true);
        assert!(session.supports_topology());
        let mut pinned = AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .secure_measurement(MeasurementId(45));
        for j in 0..14 {
            if j != 11 {
                pinned = pinned.target(BusId(j), StateTarget::MustNotChange);
            }
        }
        let poisoned = pinned.clone().with_topology_attack();
        // Without meter 46 and without topology poisoning this goal is
        // infeasible; poisoning the topology unlocks it (paper §III-E).
        let plain = session.verify(&pinned);
        assert!(!plain.outcome.is_feasible());
        let topo = session.verify(&poisoned).outcome.expect_feasible();
        assert!(topo.uses_topology_attack());
        // And the verdicts match the one-shot paths.
        let verifier = AttackVerifier::new(&sys);
        assert!(!verifier.verify(&pinned).is_feasible());
        assert!(verifier.verify(&poisoned).is_feasible());
    }

    /// The first check in a session builds the base (one miss); every
    /// later variant reuses it (hits). This is the observability signal
    /// rolled into the campaign trace.
    #[test]
    fn session_counts_base_cache_hits() {
        let sys = ieee14::system();
        let mut session = VerifySession::new(&sys, false);
        let open = AttackModel::new(14).target(BusId(11), StateTarget::MustChange);
        let blocked = open.clone().max_altered_measurements(0);
        assert_eq!((session.cache_hits(), session.cache_misses()), (0, 0));
        let first = session.verify(&open);
        assert!(!first.stats.base_cache_hit);
        assert_eq!((session.cache_hits(), session.cache_misses()), (0, 1));
        let second = session.verify(&blocked);
        assert!(second.stats.base_cache_hit);
        let third = session.verify(&open);
        assert!(third.stats.base_cache_hit);
        assert_eq!((session.cache_hits(), session.cache_misses()), (2, 1));
    }

    /// An exhausted budget yields Unknown and leaves the session usable.
    #[test]
    fn timed_out_job_leaves_session_reusable() {
        let sys = ieee14::system();
        let mut session = VerifySession::new(&sys, false);
        let model = AttackModel::new(14);
        let report =
            session.verify_with_budget(&model, &Budget::with_timeout(Duration::ZERO));
        assert!(report.outcome.is_unknown(), "{:?}", report.outcome);
        // Next job on the same session, unlimited: decidable again.
        assert!(session.verify(&model).outcome.is_feasible());
    }

    /// Assumption-based re-verification of an open scenario must agree
    /// with the equivalent assert-based hardened model, on both the
    /// incremental core and the clone-per-check fallback.
    #[test]
    fn scenario_assumptions_match_hardened_model_verdicts() {
        let sys = ieee14::system_unsecured();
        let one_shot = AttackVerifier::new(&sys);
        let attacker = AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .max_altered_measurements(8);
        let bus_sets: [&[BusId]; 4] = [
            &[],
            &[BusId(11)],
            &[BusId(3), BusId(10)],
            &[BusId(2), BusId(5), BusId(11), BusId(12)],
        ];
        for incremental in [true, false] {
            let mut session = VerifySession::new(&sys, false);
            session.set_incremental(incremental);
            session.begin_scenario(&attacker);
            for buses in bus_sets {
                let assumed = session
                    .verify_assuming(buses, &[], &sta_smt::Budget::unlimited())
                    .outcome
                    .is_feasible();
                let hardened = attacker.clone().secure_buses(buses);
                let asserted = one_shot.verify(&hardened).is_feasible();
                assert_eq!(
                    assumed, asserted,
                    "incremental={incremental} buses={buses:?}"
                );
            }
            session.end_scenario();
        }
    }

    /// Measurement-granular assumption deltas agree with the assert-based
    /// path too.
    #[test]
    fn scenario_measurement_assumptions_match_hardened_model() {
        let sys = ieee14::system_unsecured();
        let one_shot = AttackVerifier::new(&sys);
        let attacker = AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .max_altered_measurements(8);
        let mut session = VerifySession::new(&sys, false);
        session.begin_scenario(&attacker);
        for ids in [vec![], vec![MeasurementId(45)], vec![MeasurementId(45), MeasurementId(50)]] {
            let assumed = session
                .verify_assuming(&[], &ids, &sta_smt::Budget::unlimited())
                .outcome
                .is_feasible();
            let mut hardened = attacker.clone();
            hardened.extra_secured_measurements.extend(ids.iter().copied());
            let asserted = one_shot.verify(&hardened).is_feasible();
            assert_eq!(assumed, asserted, "{ids:?}");
        }
        session.end_scenario();
    }

    /// After `end_scenario` the session serves fresh scenarios — both a
    /// new assumption scope and the plain assert-based path.
    #[test]
    fn session_is_reusable_after_end_scenario() {
        let sys = ieee14::system();
        let mut session = VerifySession::new(&sys, false);
        let open = AttackModel::new(14).target(BusId(11), StateTarget::MustChange);
        session.begin_scenario(&open);
        assert!(session
            .verify_assuming(&[], &[], &sta_smt::Budget::unlimited())
            .outcome
            .is_feasible());
        session.end_scenario();
        // A different scenario in a new scope.
        let blocked = open.clone().max_altered_measurements(0);
        session.begin_scenario(&blocked);
        assert!(!session
            .verify_assuming(&[], &[], &sta_smt::Budget::unlimited())
            .outcome
            .is_feasible());
        session.end_scenario();
        // Plain verify still works on the same session.
        assert!(session.verify(&open).outcome.is_feasible());
    }

    /// A zero budget inside an open scenario yields Unknown at whatever
    /// poll site trips first and must not poison the live core.
    #[test]
    fn zero_budget_verify_assuming_keeps_scenario_usable() {
        let sys = ieee14::system();
        let mut session = VerifySession::new(&sys, false);
        let model = AttackModel::new(14);
        session.begin_scenario(&model);
        let starved = session.verify_assuming(&[], &[], &Budget::with_timeout(Duration::ZERO));
        assert!(starved.outcome.is_unknown(), "{:?}", starved.outcome);
        // Same open scenario, unlimited budget: decided again.
        assert!(session
            .verify_assuming(&[], &[], &sta_smt::Budget::unlimited())
            .outcome
            .is_feasible());
        session.end_scenario();
    }

    /// Certified checks work inside a session, including proof replay for
    /// unsat variants after earlier sat variants (the push/pop proof-state
    /// regression this PR fixes at the solver level).
    #[test]
    fn session_certifies_across_variants() {
        let sys = ieee14::system();
        let verifier =
            AttackVerifier::new(&sys).with_certify(sta_smt::CertifyLevel::Full);
        let mut session = VerifySession::with_verifier(verifier, false);
        let open = AttackModel::new(14).target(BusId(11), StateTarget::MustChange);
        let blocked = open.clone().max_altered_measurements(0);
        for _ in 0..2 {
            let sat = session.verify(&open);
            assert!(sat.outcome.is_feasible());
            assert!(sat.stats.certified);
            let unsat = session.verify(&blocked);
            assert!(!unsat.outcome.is_feasible());
            assert!(unsat.stats.certified);
            assert!(unsat.stats.proof_steps > 0);
        }
    }
}
