//! Attack vectors: the witnesses extracted from satisfiable models.

use sta_grid::{BusId, LineId, MeasurementId};
use sta_smt::{Interrupt, SolverStats};
use std::fmt;

/// One measurement alteration: inject `delta` into the meter reading.
#[derive(Debug, Clone, PartialEq)]
pub struct Alteration {
    /// The altered measurement.
    pub measurement: MeasurementId,
    /// The false data added to the true reading (`a_i`).
    pub delta: f64,
}

/// A concrete undetected false-data-injection attack.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttackVector {
    /// Measurements to alter, with their injection amounts (`cz`/`a`).
    pub alterations: Vec<Alteration>,
    /// Substations the attacker must compromise (`cb`).
    pub compromised_buses: Vec<BusId>,
    /// Resulting change of each state estimate (`Δθ_j`, reference
    /// included as zero).
    pub state_changes: Vec<f64>,
    /// Lines excluded from the mapped topology (`el`).
    pub excluded_lines: Vec<LineId>,
    /// Lines included into the mapped topology (`il`).
    pub included_lines: Vec<LineId>,
}

impl AttackVector {
    /// Number of altered measurements.
    pub fn num_alterations(&self) -> usize {
        self.alterations.len()
    }

    /// Whether the attack uses topology poisoning.
    pub fn uses_topology_attack(&self) -> bool {
        !self.excluded_lines.is_empty() || !self.included_lines.is_empty()
    }

    /// Buses whose state estimate moves by more than `tol`.
    pub fn attacked_states(&self, tol: f64) -> Vec<BusId> {
        self.state_changes
            .iter()
            .enumerate()
            .filter(|(_, d)| d.abs() > tol)
            .map(|(j, _)| BusId(j))
            .collect()
    }
}

impl fmt::Display for AttackVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alter {{")?;
        for (i, a) in self.alterations.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {:+.4}", a.measurement.0 + 1, a.delta)?;
        }
        write!(f, "}} via buses {{")?;
        for (i, b) in self.compromised_buses.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", b.0 + 1)?;
        }
        write!(f, "}}")?;
        if self.uses_topology_attack() {
            write!(f, " excluding {{")?;
            for (i, l) in self.excluded_lines.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", l.0 + 1)?;
            }
            write!(f, "}} including {{")?;
            for (i, l) in self.included_lines.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", l.0 + 1)?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// Outcome of one attack-feasibility verification.
#[derive(Debug, Clone)]
pub enum AttackOutcome {
    /// The scenario admits an attack; here is one.
    Feasible(Box<AttackVector>),
    /// No attack satisfies the scenario's constraints.
    Infeasible,
    /// The verification's budget ran out before a verdict — the scenario is
    /// undecided, which is *not* the same as infeasible (see
    /// [`crate::attack::AttackVerifier::verify_with_budget`]).
    Unknown(Interrupt),
}

impl AttackOutcome {
    /// Whether an attack exists.
    pub fn is_feasible(&self) -> bool {
        matches!(self, AttackOutcome::Feasible(_))
    }

    /// Whether the verification ran out of budget before a verdict.
    pub fn is_unknown(&self) -> bool {
        matches!(self, AttackOutcome::Unknown(_))
    }

    /// The witness, if feasible.
    pub fn vector(&self) -> Option<&AttackVector> {
        match self {
            AttackOutcome::Feasible(v) => Some(v),
            AttackOutcome::Infeasible | AttackOutcome::Unknown(_) => None,
        }
    }

    /// Extracts the witness.
    ///
    /// # Panics
    /// Panics if infeasible or unknown.
    pub fn expect_feasible(self) -> AttackVector {
        match self {
            AttackOutcome::Feasible(v) => *v,
            AttackOutcome::Infeasible => panic!("expected a feasible attack"),
            AttackOutcome::Unknown(why) => {
                panic!("expected a feasible attack, got unknown ({why})")
            }
        }
    }
}

/// An outcome together with the solver statistics of the check — what the
/// evaluation section's timing/memory figures are built from.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Feasibility and witness.
    pub outcome: AttackOutcome,
    /// Resource usage of the underlying SMT check.
    pub stats: SolverStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_one_indexed() {
        let v = AttackVector {
            alterations: vec![Alteration { measurement: MeasurementId(7), delta: 0.5 }],
            compromised_buses: vec![BusId(3)],
            state_changes: vec![0.0, 0.2],
            excluded_lines: vec![LineId(12)],
            included_lines: vec![],
        };
        let text = v.to_string();
        assert!(text.contains("8"), "{text}");
        assert!(text.contains("buses {4}"), "{text}");
        assert!(text.contains("excluding {13}"), "{text}");
        assert!(v.uses_topology_attack());
        assert_eq!(v.attacked_states(0.1), vec![BusId(1)]);
    }

    #[test]
    fn outcome_accessors() {
        let fe = AttackOutcome::Feasible(Box::new(AttackVector::default()));
        assert!(fe.is_feasible());
        assert!(fe.vector().is_some());
        let inf = AttackOutcome::Infeasible;
        assert!(!inf.is_feasible());
        assert!(inf.vector().is_none());
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn expect_feasible_panics_on_infeasible() {
        AttackOutcome::Infeasible.expect_feasible();
    }
}
