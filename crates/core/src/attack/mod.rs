//! Undetected false data injection (UFDI) attack modeling and
//! verification — the paper's §III.
//!
//! * [`AttackModel`] — the scenario: knowledge, resources, goal, topology
//!   poisoning ([`model`]);
//! * [`AttackVerifier`] — the SMT encoding and feasibility check
//!   ([`verifier`]);
//! * [`AttackVector`] / [`AttackOutcome`] — extracted witnesses
//!   ([`vector`]).

pub mod model;
pub mod vector;
pub mod verifier;

pub use model::{AttackModel, StateTarget};
pub use vector::{Alteration, AttackOutcome, AttackVector, VerificationReport};
pub use verifier::AttackVerifier;
