//! Undetected false data injection (UFDI) attack modeling and
//! verification — the paper's §III.
//!
//! * [`AttackModel`] — the scenario: knowledge, resources, goal, topology
//!   poisoning ([`model`]);
//! * [`AttackVerifier`] — the SMT encoding and feasibility check
//!   ([`verifier`]);
//! * [`AttackVector`] / [`AttackOutcome`] — extracted witnesses
//!   ([`vector`]);
//! * [`VerifySession`] — incremental verification of many scenarios over
//!   one base encoding ([`batch`]).

pub mod batch;
pub mod model;
pub mod vector;
pub mod verifier;

pub use batch::VerifySession;
pub use model::{AttackModel, StateTarget};
pub use vector::{Alteration, AttackOutcome, AttackVector, VerificationReport};
pub use verifier::AttackVerifier;
