//! The UFDI attack verification model: paper §III encoded into SMT.
//!
//! # Encoding
//!
//! Real variables: the state-estimate changes `Δθ_j` (reference pinned to
//! zero), the per-line *measured flow change* `ΔPL_i`, and the per-bus
//! *measured consumption change* `ΔPB_j`. Boolean variables: `cz_i`
//! (measurement `i` must be altered), `cb_j` (substation `j` must be
//! compromised), and — when topology poisoning is enabled — `el_i`/`il_i`
//! (line exclusion/inclusion).
//!
//! Per line (reconstructing Eqs. 6–13 around the base operating point
//! `θ̄`/`P̄`):
//!
//! * mapped, in true topology (`tl ∧ ¬el`): `ΔPL_i = ld_i(Δθ_lf − Δθ_lt)`;
//! * excluded (`el`): the meter must read zero, `ΔPL_i = −P̄_i` — and the
//!   angle difference across the line is *unconstrained*, which is exactly
//!   how topology errors strengthen UFDI attacks;
//! * included (`il`): the meter must show the flow the fake model implies,
//!   `ΔPL_i = ld_i(θ̄_lf − θ̄_lt) + ld_i(Δθ_lf − Δθ_lt)`;
//! * open and not included: `ΔPL_i = 0`.
//!
//! Consumption (Eq. 14): `ΔPB_j = Σ_{i∈in(j)} ΔPL_i − Σ_{i∈out(j)} ΔPL_i`.
//! Alteration linking (Eqs. 15–16): for a taken meter,
//! `cz ↔ (its delta ≠ 0)`; untaken meters are never altered. Knowledge
//! (Eq. 17): `¬bd_i → ¬cz_i ∧ ¬cz_{l+i}`, plus `il_i → bd_i` (computing an
//! included line's fake flow needs its admittance; an exclusion's zeroing
//! is already gated through its `cz`s). Accessibility/security (Eq. 19),
//! resource cardinalities (Eqs. 22/24), and the attack goal (Eqs. 25/26)
//! complete the model.
//!
//! # Base/scenario split
//!
//! The encoding is built in two stages so that sweeps can reuse work:
//! [`AttackVerifier::encode_base`] asserts everything that depends only on
//! the test system (line semantics, alteration linking, system-level
//! protection, the `cz → cb` chain), and `assert_scenario` layers the
//! scenario-specific attributes (knowledge, budgets, goals, extra
//! protection) on top. [`crate::attack::VerifySession`] combines the two
//! with the solver's push/pop scopes so a whole campaign of variants pays
//! for the base exactly once.

use crate::attack::model::{AttackModel, StateTarget};
use crate::attack::vector::{Alteration, AttackOutcome, AttackVector, VerificationReport};
use crate::decimal;
use sta_estimator::dcflow;
use sta_grid::{BusId, LineId, MeasurementConfig, MeasurementId, TestSystem};
use sta_smt::{
    BoolVar, Budget, CertifyLevel, Formula, LinExpr, LinExprCmp, Model, Profiler, RealVar,
    Rational, SatResult, SimplexMode, Solver,
};
use std::sync::Arc;
use std::time::Duration;

/// The variable layout of one base encoding, produced by
/// [`AttackVerifier::encode_base`] and consumed when asserting scenarios
/// and extracting witnesses.
#[derive(Debug, Clone)]
pub(crate) struct AttackEncoding {
    /// `Δθ_j` per bus.
    pub(crate) dtheta: Vec<RealVar>,
    /// `cz_i` per potential measurement (`2l + b` of them).
    pub(crate) cz: Vec<BoolVar>,
    /// `cb_j` per bus.
    pub(crate) cb: Vec<BoolVar>,
    /// `el_i` for excludable lines (when built with topology support).
    pub(crate) el: Vec<Option<BoolVar>>,
    /// `il_i` for includable lines (when built with topology support).
    pub(crate) il: Vec<Option<BoolVar>>,
    /// Inlined `ΔPL_i` forms (a plain linear form for ordinary lines, a
    /// constrained real variable for topology-attackable ones).
    pub(crate) dpl_expr: Vec<LinExpr>,
    /// Inlined `ΔPB_j` forms.
    pub(crate) dpb_expr: Vec<LinExpr>,
    /// Whether the base was built with topology-attack variables.
    pub(crate) topology: bool,
}

/// Verifies UFDI attack feasibility against one test system.
///
/// # Examples
///
/// ```
/// use sta_core::attack::{AttackModel, AttackVerifier, StateTarget};
/// use sta_grid::{ieee14, BusId};
///
/// let sys = ieee14::system();
/// let verifier = AttackVerifier::new(&sys);
/// let model = AttackModel::new(14).target(BusId(11), StateTarget::MustChange);
/// assert!(verifier.verify(&model).is_feasible());
/// ```
#[derive(Debug, Clone)]
pub struct AttackVerifier {
    /// The case under verification, shared so verifiers (and the
    /// [`crate::attack::VerifySession`]s built on them) own their data
    /// and can outlive the call stack that created them — the service
    /// layer caches live sessions across requests.
    system: Arc<TestSystem>,
    /// Base operating-point angles, exact; the anchor for topology
    /// attacks.
    base_theta: Vec<Rational>,
    /// Certification level applied to every solver check (the stricter of
    /// this and the scenario's own [`AttackModel::certify`]).
    certify: CertifyLevel,
    /// Span profiler handed to every solver this verifier builds; each
    /// check records a `verify` span over the solver's phase tree.
    profiler: Option<Profiler>,
    /// Whether solver checks sample progress timelines into their stats.
    progress: bool,
    /// Simplex engine selection applied to every solver this verifier
    /// builds (see [`sta_smt::SimplexMode`]).
    simplex: SimplexMode,
}

impl AttackVerifier {
    /// Creates a verifier with a deterministic synthetic base operating
    /// point (seed 0) — the paper's testbed operating points are not
    /// published; see `DESIGN.md` §5. The system is cloned into shared
    /// ownership; callers that already hold an `Arc` should use
    /// [`AttackVerifier::shared`] to avoid the copy.
    pub fn new(system: &TestSystem) -> Self {
        Self::shared(Arc::new(system.clone()))
    }

    /// Creates a verifier over an already-shared system with the default
    /// deterministic operating point (seed 0).
    pub fn shared(system: Arc<TestSystem>) -> Self {
        let injections = dcflow::synthetic_injections(system.grid.num_buses(), 0);
        let op = dcflow::solve(
            &system.grid,
            &system.topology,
            &injections,
            system.reference_bus,
        )
        .expect("test systems have connected topologies");
        Self::shared_with_operating_point(system, &op)
    }

    /// Creates a verifier anchored at a specific operating point. The
    /// system is cloned into shared ownership (see
    /// [`AttackVerifier::shared_with_operating_point`]).
    pub fn with_operating_point(
        system: &TestSystem,
        op: &dcflow::OperatingPoint,
    ) -> Self {
        Self::shared_with_operating_point(Arc::new(system.clone()), op)
    }

    /// Creates a verifier over an already-shared system, anchored at a
    /// specific operating point.
    pub fn shared_with_operating_point(
        system: Arc<TestSystem>,
        op: &dcflow::OperatingPoint,
    ) -> Self {
        let base_theta = op
            .theta
            .iter()
            .map(|&t| decimal::angle(t))
            .collect();
        AttackVerifier {
            system,
            base_theta,
            certify: CertifyLevel::Off,
            profiler: None,
            progress: false,
            simplex: SimplexMode::Auto,
        }
    }

    /// Sets the certification level for every subsequent check.
    ///
    /// Certification failures are solver bugs and abort with a
    /// reproducible dump of the asserted formulas (see
    /// [`sta_smt::Solver::check`]).
    pub fn with_certify(mut self, level: CertifyLevel) -> Self {
        self.certify = level;
        self
    }

    /// The configured certification level.
    pub fn certify_level(&self) -> CertifyLevel {
        self.certify
    }

    /// Attaches a span profiler: every subsequent check records a
    /// `verify` span wrapping the solver's `encode`/`search`/`certify`
    /// tree (see [`sta_smt::Profiler`]).
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// In-place form of [`AttackVerifier::with_profiler`] for verifiers
    /// owned by a session.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// In-place form of [`AttackVerifier::with_progress_sampling`].
    pub fn set_progress_sampling(&mut self, on: bool) {
        self.progress = on;
    }

    /// Enables progress-timeline sampling on every solver this verifier
    /// builds (see [`sta_smt::Solver::set_progress_sampling`]).
    pub fn with_progress_sampling(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Whether progress sampling is enabled.
    pub fn progress_sampling(&self) -> bool {
        self.progress
    }

    /// Selects the simplex engine for every solver this verifier builds:
    /// `Auto` (the default) upgrades from the dense tableau to the
    /// revised/factorized engine on large systems, `Dense`/`Revised` pin
    /// one backend. Verdicts, models and deterministic counters are
    /// identical across modes (see [`sta_smt::Solver::set_simplex_mode`]).
    pub fn with_simplex(mut self, mode: SimplexMode) -> Self {
        self.simplex = mode;
        self
    }

    /// In-place form of [`AttackVerifier::with_simplex`] for verifiers
    /// owned by a session.
    pub fn set_simplex_mode(&mut self, mode: SimplexMode) {
        self.simplex = mode;
    }

    /// The configured simplex engine mode.
    pub fn simplex_mode(&self) -> SimplexMode {
        self.simplex
    }

    /// Applies this verifier's observability configuration (profiler,
    /// clock, progress sampling) and engine selection to a solver it is
    /// about to drive.
    pub(crate) fn configure_solver(&self, solver: &mut Solver) {
        if let Some(p) = &self.profiler {
            solver.set_profiler(p.clone());
        }
        solver.set_progress_sampling(self.progress);
        solver.set_simplex_mode(self.simplex);
    }

    /// The system under verification.
    pub fn system(&self) -> &TestSystem {
        &self.system
    }

    /// The shared handle to the system under verification (cheap to
    /// clone into other verifiers or sessions over the same case).
    pub fn system_arc(&self) -> &Arc<TestSystem> {
        &self.system
    }

    /// The exact base angles the topology constraints are anchored to.
    pub fn base_theta(&self) -> &[Rational] {
        &self.base_theta
    }

    /// The exact base flow of `line` implied by the anchored angles.
    pub fn base_flow(&self, line: LineId) -> Rational {
        let l = self.system.grid.line(line);
        if !self.system.topology.is_in_service(line) {
            return Rational::zero();
        }
        let y = decimal::admittance(l.admittance);
        &y * &(&self.base_theta[l.from.0] - &self.base_theta[l.to.0])
    }

    /// The *potential* flow `ld_i(θ̄_lf − θ̄_lt)` an included line would
    /// show (nonzero even though the line is open).
    pub fn potential_flow(&self, line: LineId) -> Rational {
        let l = self.system.grid.line(line);
        let y = decimal::admittance(l.admittance);
        &y * &(&self.base_theta[l.from.0] - &self.base_theta[l.to.0])
    }

    /// Checks feasibility of `model`, returning the outcome only.
    pub fn verify(&self, model: &AttackModel) -> AttackOutcome {
        self.verify_with_stats(model).outcome
    }

    /// Enumerates up to `limit` attacks with pairwise distinct
    /// altered-measurement sets (the analytics counterpart of the paper's
    /// remark that the synthesis "can synthesize all of these sets").
    ///
    /// Stops early if a check runs out of budget — the vectors found so
    /// far are still valid.
    pub fn enumerate(&self, model: &AttackModel, limit: usize) -> Vec<AttackVector> {
        let mut found = Vec::new();
        let mut working = model.clone();
        while found.len() < limit {
            match self.verify(&working) {
                AttackOutcome::Feasible(v) => {
                    working.blocked_alteration_sets.push(
                        v.alterations.iter().map(|a| a.measurement).collect(),
                    );
                    found.push(*v);
                }
                AttackOutcome::Infeasible | AttackOutcome::Unknown(_) => break,
            }
        }
        found
    }

    /// Checks feasibility and returns solver statistics alongside,
    /// honoring the scenario's own [`AttackModel::timeout_ms`].
    ///
    /// # Panics
    /// Panics if `model.targets.len()` does not match the system's bus
    /// count, or a knowledge vector has the wrong length.
    pub fn verify_with_stats(&self, model: &AttackModel) -> VerificationReport {
        let budget = match model.timeout_ms {
            Some(ms) => Budget::with_timeout(Duration::from_millis(ms)),
            None => Budget::unlimited(),
        };
        self.verify_with_budget(model, &budget)
    }

    /// Checks feasibility under an explicit wall-clock/cancellation
    /// budget. An exhausted budget yields
    /// [`AttackOutcome::Unknown`] — the scenario is *undecided*, not
    /// infeasible. The budget covers *every* solver phase, including the
    /// Tseitin/cardinality encoding of the §III constraints: a large
    /// system whose CNF expansion alone exceeds the deadline still comes
    /// back `Unknown` on time. The returned report's stats carry the
    /// per-phase observability counters (see [`sta_smt::PhaseMetrics`]).
    ///
    /// # Panics
    /// Panics if `model.targets.len()` does not match the system's bus
    /// count, or a knowledge vector has the wrong length.
    pub fn verify_with_budget(
        &self,
        model: &AttackModel,
        budget: &Budget,
    ) -> VerificationReport {
        let _sp = self.profiler.as_ref().map(|p| p.span("verify"));
        let mut solver = Solver::new();
        solver.set_certify(self.certify.max(model.certify));
        self.configure_solver(&mut solver);
        let enc = self.encode_base(&mut solver, model.allow_topology_attack);
        self.assert_scenario(&mut solver, &enc, model);
        solver.set_budget(budget.clone());
        let result = solver.check();
        let stats = solver.last_stats().cloned().unwrap_or_default();
        let outcome = match result {
            SatResult::Unsat => AttackOutcome::Infeasible,
            SatResult::Unknown(why) => AttackOutcome::Unknown(why),
            SatResult::Sat(m) => {
                AttackOutcome::Feasible(Box::new(self.extract_vector(&enc, &m)))
            }
        };
        VerificationReport { outcome, stats }
    }

    /// Asserts every scenario-independent constraint into `solver` and
    /// returns the variable layout. With `topology` set, excludable and
    /// includable lines get their `el`/`il` variables (scenarios that
    /// disallow topology attacks then pin them false).
    pub(crate) fn encode_base(
        &self,
        solver: &mut Solver,
        topology: bool,
    ) -> AttackEncoding {
        let grid = &self.system.grid;
        let b = grid.num_buses();
        let l = grid.num_lines();

        let dtheta: Vec<RealVar> = (0..b).map(|_| solver.new_real()).collect();
        let cz: Vec<BoolVar> = (0..2 * l + b).map(|_| solver.new_bool()).collect();
        let cb: Vec<BoolVar> = (0..b).map(|_| solver.new_bool()).collect();
        // el/il only exist when topology attacks are possible for a line.
        let el: Vec<Option<BoolVar>> = (0..l)
            .map(|i| {
                (topology && self.system.excludable(LineId(i)))
                    .then(|| solver.new_bool())
            })
            .collect();
        let il: Vec<Option<BoolVar>> = (0..l)
            .map(|i| {
                (topology && self.system.includable(LineId(i)))
                    .then(|| solver.new_bool())
            })
            .collect();

        // Reference bus is the angle datum: Δθ_ref = 0.
        solver.assert_formula(
            &LinExpr::var(dtheta[self.system.reference_bus.0]).eq_expr(LinExpr::zero()),
        );

        // Per-line measured-flow-change semantics (Eqs. 6–13). `ΔPL_i` is
        // represented *symbolically*: for lines that cannot be the target
        // of a topology attack it is the literal linear form
        // `ld_i(Δθ_lf − Δθ_lt)` (or the constant 0 for open lines), inlined
        // everywhere it is used. Only topology-attackable lines get a real
        // variable plus conditional defining constraints. Keeping the
        // common case as a pure form — instead of an equality-constrained
        // variable per line and per bus — keeps the simplex tableau sparse:
        // eliminating the `2l + b` equality rows of the naive encoding
        // amounts to densely inverting the grid Laplacian, which dominated
        // solve time by orders of magnitude.
        let mut dpl_expr: Vec<LinExpr> = Vec::with_capacity(l);
        for i in 0..l {
            let line = grid.line(LineId(i));
            let y = decimal::admittance(line.admittance);
            let flow_expr = LinExpr::term(y.clone(), dtheta[line.from.0])
                + LinExpr::term(-&y, dtheta[line.to.0]);
            if self.system.topology.is_in_service(LineId(i)) {
                match el[i] {
                    Some(e) => {
                        let v = solver.new_real();
                        let dpl_var = LinExpr::var(v);
                        let zeroed = dpl_var.clone().eq_expr(LinExpr::constant(
                            -&self.base_flow(LineId(i)),
                        ));
                        let normal = dpl_var.clone().eq_expr(flow_expr);
                        solver.assert_formula(&Formula::var(e).implies(zeroed));
                        solver.assert_formula(&Formula::var(e).not().implies(normal));
                        dpl_expr.push(dpl_var);
                    }
                    None => dpl_expr.push(flow_expr),
                }
            } else {
                match il[i] {
                    Some(v_il) => {
                        let v = solver.new_real();
                        let dpl_var = LinExpr::var(v);
                        let shown = dpl_var.clone().eq_expr(
                            flow_expr
                                + LinExpr::constant(self.potential_flow(LineId(i))),
                        );
                        let silent = dpl_var.clone().eq_expr(LinExpr::zero());
                        solver.assert_formula(&Formula::var(v_il).implies(shown));
                        solver
                            .assert_formula(&Formula::var(v_il).not().implies(silent));
                        dpl_expr.push(dpl_var);
                    }
                    None => dpl_expr.push(LinExpr::zero()),
                }
            }
        }

        // Consumption changes (Eq. 14): ΔPB_j = Σ_in ΔPL − Σ_out ΔPL,
        // again as inlined forms.
        let dpb_expr: Vec<LinExpr> = (0..b)
            .map(|j| {
                let mut sum = LinExpr::zero();
                for (li, _) in grid.incoming(BusId(j)) {
                    sum = sum + dpl_expr[li.0].clone();
                }
                for (li, _) in grid.outgoing(BusId(j)) {
                    sum = sum - dpl_expr[li.0].clone();
                }
                sum
            })
            .collect();

        // Alteration linking (Eqs. 15–16): taken meter ⇒ cz ↔ delta ≠ 0.
        let taken = |m: usize| self.system.measurements.is_taken(MeasurementId(m));
        for i in 0..l {
            let nonzero = dpl_expr[i].clone().ne_expr(LinExpr::zero());
            for &m in &[i, l + i] {
                if taken(m) {
                    solver.assert_formula(&Formula::var(cz[m]).iff(nonzero.clone()));
                } else {
                    solver.assert_formula(&Formula::var(cz[m]).not());
                }
            }
        }
        for j in 0..b {
            let m = 2 * l + j;
            if taken(m) {
                let nonzero = dpb_expr[j].clone().ne_expr(LinExpr::zero());
                solver.assert_formula(&Formula::var(cz[m]).iff(nonzero));
            } else {
                solver.assert_formula(&Formula::var(cz[m]).not());
            }
        }

        // System-level protection and accessibility (Eq. 19, the part
        // every scenario shares): cz_i → az_i ∧ ¬sz_i.
        for m in 0..2 * l + b {
            if self.base_blocked(m) {
                solver.assert_formula(&Formula::var(cz[m]).not());
            }
        }

        // Altering a measurement requires compromising its substation
        // (Eq. 23).
        for m in 0..2 * l + b {
            let bus = MeasurementConfig::bus_of(grid, MeasurementId(m));
            solver.assert_formula(
                &Formula::var(cz[m]).implies(Formula::var(cb[bus.0])),
            );
        }

        AttackEncoding { dtheta, cz, cb, el, il, dpl_expr, dpb_expr, topology }
    }

    /// Layers one scenario's attributes on top of a base encoding:
    /// knowledge, extra protection/accessibility, resource budgets, the
    /// attack goal and enumeration blocks.
    ///
    /// # Panics
    /// Panics if the scenario enables topology attacks but `enc` was built
    /// without them, if `model.targets.len()` does not match the system's
    /// bus count, or if a knowledge vector has the wrong length.
    pub(crate) fn assert_scenario(
        &self,
        solver: &mut Solver,
        enc: &AttackEncoding,
        model: &AttackModel,
    ) {
        let grid = &self.system.grid;
        let b = grid.num_buses();
        let l = grid.num_lines();
        assert_eq!(model.targets.len(), b, "one target per bus");
        if let Some(bd) = &model.known_admittances {
            assert_eq!(bd.len(), l, "one knowledge flag per line");
        }
        assert!(
            enc.topology || !model.allow_topology_attack,
            "scenario enables topology attacks but the base encoding was \
             built without them"
        );

        // A base with topology variables serving a scenario without
        // topology attacks: pin every el/il false so the line semantics
        // collapse to the plain encoding.
        if enc.topology && !model.allow_topology_attack {
            for v in enc.el.iter().chain(enc.il.iter()).flatten() {
                solver.assert_formula(&Formula::var(*v).not());
            }
        }

        // Knowledge (Eq. 17): unknown admittance forbids altering the
        // line's flow meters and including the line. Under strict
        // knowledge the line's measured flow must stay unchanged
        // altogether (the attacker cannot compute the incident-bus
        // adjustments a change through an unknown line would require).
        if let Some(bd) = &model.known_admittances {
            for i in 0..l {
                if !bd[i] {
                    solver.assert_formula(&Formula::var(enc.cz[i]).not());
                    solver.assert_formula(&Formula::var(enc.cz[l + i]).not());
                    if model.allow_topology_attack {
                        if let Some(v) = enc.il[i] {
                            solver.assert_formula(&Formula::var(v).not());
                        }
                    }
                    if model.strict_knowledge {
                        solver.assert_formula(
                            &enc.dpl_expr[i].clone().eq_expr(LinExpr::zero()),
                        );
                    }
                }
            }
        }

        // Scenario-level protection and accessibility deltas (Eqs. 19/28)
        // — only for measurements the base does not already block.
        let secured = self.effective_secured(model);
        for m in 0..2 * l + b {
            let blocked = secured[m]
                || model
                    .inaccessible_measurements
                    .contains(&MeasurementId(m));
            if blocked && !self.base_blocked(m) {
                solver.assert_formula(&Formula::var(enc.cz[m]).not());
            }
        }

        // Resource limits (Eqs. 22 and 24).
        if let Some(t_cz) = model.max_altered_measurements {
            solver.assert_formula(&Formula::at_most(
                enc.cz.iter().map(|&v| Formula::var(v)).collect(),
                t_cz,
            ));
        }
        if let Some(t_cb) = model.max_compromised_buses {
            solver.assert_formula(&Formula::at_most(
                enc.cb.iter().map(|&v| Formula::var(v)).collect(),
                t_cb,
            ));
        }

        // Attack goal (Eqs. 25–26).
        let mut any_must = false;
        for j in 0..b {
            match model.targets[j] {
                StateTarget::MustChange => {
                    any_must = true;
                    solver.assert_formula(
                        &LinExpr::var(enc.dtheta[j]).ne_expr(LinExpr::zero()),
                    );
                }
                StateTarget::MustNotChange => solver.assert_formula(
                    &LinExpr::var(enc.dtheta[j]).eq_expr(LinExpr::zero()),
                ),
                StateTarget::Free => {}
            }
        }
        for &(a, c) in &model.different_changes {
            any_must = true;
            solver.assert_formula(
                &LinExpr::var(enc.dtheta[a.0]).ne_expr(LinExpr::var(enc.dtheta[c.0])),
            );
        }
        if !any_must {
            // With no explicit goal, "feasible" must still mean a real
            // attack: some state estimate is corrupted.
            solver.assert_formula(&Formula::or(
                (0..b)
                    .filter(|&j| j != self.system.reference_bus.0)
                    .map(|j| LinExpr::var(enc.dtheta[j]).ne_expr(LinExpr::zero()))
                    .collect(),
            ));
        }

        // Enumeration support: the altered-measurement set must differ
        // from each blocked pattern (some member unaltered, or some
        // non-member altered).
        for blocked in &model.blocked_alteration_sets {
            let in_set = |m: usize| blocked.contains(&MeasurementId(m));
            solver.assert_formula(&Formula::or(
                (0..2 * l + b)
                    .map(|m| {
                        if in_set(m) {
                            Formula::var(enc.cz[m]).not()
                        } else {
                            Formula::var(enc.cz[m])
                        }
                    })
                    .collect(),
            ));
        }
    }

    /// Reads an attack vector out of a satisfying model.
    pub(crate) fn extract_vector(&self, enc: &AttackEncoding, m: &Model) -> AttackVector {
        let grid = &self.system.grid;
        let b = grid.num_buses();
        let l = grid.num_lines();
        let mut vector = AttackVector {
            state_changes: enc
                .dtheta
                .iter()
                .map(|&v| m.real_value(v).to_f64())
                .collect(),
            ..AttackVector::default()
        };
        // Exact evaluation of an inlined delta form under the model.
        let eval = |e: &LinExpr| e.eval(|v| m.real_value(v).clone()).to_f64();
        for i in 0..l {
            let d = eval(&enc.dpl_expr[i]);
            if m.bool_value(enc.cz[i]) {
                vector.alterations.push(Alteration {
                    measurement: MeasurementId(i),
                    delta: d,
                });
            }
            if m.bool_value(enc.cz[l + i]) {
                vector.alterations.push(Alteration {
                    measurement: MeasurementId(l + i),
                    delta: -d,
                });
            }
            if let Some(v) = enc.el[i] {
                if m.bool_value(v) {
                    vector.excluded_lines.push(LineId(i));
                }
            }
            if let Some(v) = enc.il[i] {
                if m.bool_value(v) {
                    vector.included_lines.push(LineId(i));
                }
            }
        }
        for j in 0..b {
            if m.bool_value(enc.cz[2 * l + j]) {
                vector.alterations.push(Alteration {
                    measurement: MeasurementId(2 * l + j),
                    delta: eval(&enc.dpb_expr[j]),
                });
            }
        }
        let mut buses: Vec<BusId> = vector
            .alterations
            .iter()
            .map(|a| MeasurementConfig::bus_of(grid, a.measurement))
            .collect();
        buses.sort_unstable();
        buses.dedup();
        vector.compromised_buses = buses;
        vector
    }

    /// The assumption literals expressing a secured-set *delta* on top of
    /// an already-asserted scenario: `¬cz_m` for every measurement at one
    /// of `buses` (or listed in `measurements`) that the base encoding
    /// does not already block. Semantically identical to asserting the
    /// same `¬cz` units in a scope (see `assert_scenario`'s Eq. 28 loop),
    /// but retractable for free — the incremental CEGIS loop re-verifies
    /// one scenario under many candidate architectures this way, keeping
    /// the solver's learned clauses and warm simplex basis across rounds.
    pub(crate) fn secured_delta_assumptions(
        &self,
        enc: &AttackEncoding,
        buses: &[BusId],
        measurements: &[MeasurementId],
    ) -> Vec<(BoolVar, bool)> {
        let grid = &self.system.grid;
        let m = grid.num_potential_measurements();
        (0..m)
            .filter(|&i| {
                let covered = buses.contains(&MeasurementConfig::bus_of(grid, MeasurementId(i)))
                    || measurements.contains(&MeasurementId(i));
                covered && !self.base_blocked(i)
            })
            .map(|i| (enc.cz[i], false))
            .collect()
    }

    /// Whether the system configuration alone forbids altering `m`
    /// (secured or inaccessible regardless of scenario).
    fn base_blocked(&self, m: usize) -> bool {
        self.system.measurements.is_secured(MeasurementId(m))
            || !self.system.measurements.is_accessible(MeasurementId(m))
    }

    /// The effective `sz` vector: system configuration plus the model's
    /// extra secured measurements and buses (Eq. 28).
    fn effective_secured(&self, model: &AttackModel) -> Vec<bool> {
        let grid = &self.system.grid;
        let m = grid.num_potential_measurements();
        let mut secured: Vec<bool> = (0..m)
            .map(|i| self.system.measurements.is_secured(MeasurementId(i)))
            .collect();
        for id in &model.extra_secured_measurements {
            secured[id.0] = true;
        }
        for bus in &model.extra_secured_buses {
            for i in 0..m {
                if MeasurementConfig::bus_of(grid, MeasurementId(i)) == *bus {
                    secured[i] = true;
                }
            }
        }
        secured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_grid::ieee14;

    #[test]
    fn unconstrained_attack_exists() {
        let sys = ieee14::system();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14);
        let outcome = verifier.verify(&model);
        let v = outcome.expect_feasible();
        assert!(!v.alterations.is_empty());
        assert!(!v.attacked_states(1e-9).is_empty());
    }

    #[test]
    fn zero_budget_is_infeasible() {
        let sys = ieee14::system();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14).max_altered_measurements(0);
        assert!(!verifier.verify(&model).is_feasible());
    }

    #[test]
    fn reference_state_cannot_be_target() {
        let sys = ieee14::system();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14).target(BusId(0), StateTarget::MustChange);
        assert!(!verifier.verify(&model).is_feasible());
    }

    #[test]
    fn alterations_respect_security() {
        let sys = ieee14::system();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14).target(BusId(11), StateTarget::MustChange);
        let v = verifier.verify(&model).expect_feasible();
        for a in &v.alterations {
            assert!(!sys.measurements.is_secured(a.measurement), "{}", a.measurement);
            assert!(sys.measurements.is_taken(a.measurement), "{}", a.measurement);
        }
    }

    #[test]
    fn resource_limits_bind() {
        let sys = ieee14::system();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .max_altered_measurements(10)
            .max_compromised_buses(4);
        if let AttackOutcome::Feasible(v) = verifier.verify(&model) {
            assert!(v.num_alterations() <= 10);
            assert!(v.compromised_buses.len() <= 4);
        }
    }

    #[test]
    fn denying_bus_access_blocks_local_attacks() {
        // Attacking state 12 needs meters at buses 6, 12 and 13; denying
        // physical access to bus 13 removes the only injection meter that
        // can absorb line 19's flow change.
        let sys = ieee14::system_unsecured();
        let verifier = AttackVerifier::new(&sys);
        let mut base = AttackModel::new(14).target(BusId(11), StateTarget::MustChange);
        for j in 0..14 {
            if j != 11 {
                base = base.target(BusId(j), StateTarget::MustNotChange);
            }
        }
        assert!(verifier.verify(&base).is_feasible());
        let denied = base.deny_bus_access(&sys.grid, BusId(12));
        assert!(!verifier.verify(&denied).is_feasible());
    }

    #[test]
    fn topology_attacks_depend_on_the_operating_point() {
        // A plain UFDI attack (a = H·c) is operating-point independent;
        // the coordination constants of a topology attack are not. The
        // verifier must anchor to whichever operating point it is given,
        // and the witness must replay against exactly that point.
        use sta_estimator::dcflow;
        let sys = ieee14::system_unsecured();
        let mut model = AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .secure_measurement(MeasurementId(45))
            .with_topology_attack();
        for j in 0..14 {
            if j != 11 {
                model = model.target(BusId(j), StateTarget::MustNotChange);
            }
        }
        let mut deltas = Vec::new();
        for seed in [0u64, 3] {
            let injections = dcflow::synthetic_injections(14, seed);
            let op = dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)
                .unwrap();
            let verifier = AttackVerifier::with_operating_point(&sys, &op);
            let attack = verifier.verify(&model).expect_feasible();
            let replay = crate::validation::replay(&sys, &op, &attack).unwrap();
            assert!(replay.is_stealthy(1e-6), "seed {seed}: {replay}");
            // The excluded line's zeroing delta = −P̄(seed).
            let zeroing = attack
                .alterations
                .iter()
                .find(|a| a.measurement == MeasurementId(12))
                .expect("line 13 forward meter altered")
                .delta;
            deltas.push(zeroing);
        }
        assert!(
            (deltas[0] - deltas[1]).abs() > 1e-3,
            "coordination constants should differ across operating points: {deltas:?}"
        );
    }

    #[test]
    fn stats_reported() {
        let sys = ieee14::system();
        let verifier = AttackVerifier::new(&sys);
        let report = verifier.verify_with_stats(&AttackModel::new(14));
        assert!(report.stats.sat_vars > 0);
        assert!(report.stats.estimated_bytes() > 0);
    }

    /// Full certification over the real IEEE 14-bus encoding: the deny-mode
    /// lint must come back clean, a feasible scenario's model must
    /// re-evaluate, and an infeasible scenario's proof must replay through
    /// the RUP/Farkas checker. `check()` panics on any certification
    /// failure, so reaching the assertions is the test.
    #[test]
    fn certified_verification_ieee14() {
        let sys = ieee14::system();
        let verifier =
            AttackVerifier::new(&sys).with_certify(sta_smt::CertifyLevel::Full);
        assert_eq!(verifier.certify_level(), sta_smt::CertifyLevel::Full);

        // Feasible: certified SAT (model re-evaluation).
        let open = AttackModel::new(14).target(BusId(11), StateTarget::MustChange);
        let report = verifier.verify_with_stats(&open);
        assert!(report.outcome.is_feasible());
        assert!(report.stats.certified);
        assert_eq!(report.stats.lint_errors, 0, "deny-mode lint must be clean");

        // Infeasible: an attacker who may not alter anything cannot corrupt
        // a state — certified UNSAT (proof replay with theory lemmas).
        let blocked = AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .max_altered_measurements(0);
        let report = verifier.verify_with_stats(&blocked);
        assert!(!report.outcome.is_feasible());
        assert!(report.stats.certified);
        assert!(report.stats.proof_steps > 0);
    }

    /// The scenario-level `certify` attribute reaches the solver even when
    /// the verifier itself is uncertified.
    #[test]
    fn scenario_certify_level_is_honored() {
        let sys = ieee14::system();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14)
            .target(BusId(5), StateTarget::MustChange)
            .with_certify(sta_smt::CertifyLevel::CheckModels);
        let report = verifier.verify_with_stats(&model);
        assert!(report.outcome.is_feasible());
        assert!(report.stats.certified);
    }

    /// A scenario with an already-expired deadline comes back Unknown —
    /// never a spurious sat/unsat verdict.
    #[test]
    fn expired_timeout_is_unknown_not_infeasible() {
        let sys = ieee14::system();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14).with_timeout_ms(0);
        let outcome = verifier.verify(&model);
        assert!(outcome.is_unknown(), "{outcome:?}");
        assert!(!outcome.is_feasible());
        assert!(outcome.vector().is_none());
        // The same scenario without the deadline is decidable.
        let model = AttackModel::new(14);
        assert!(verifier.verify(&model).is_feasible());
    }
}
