//! Attack impact quantification: what the operator *perceives* after a
//! successful UFDI attack, versus what the grid is physically doing.
//!
//! Feasibility (the paper's §III) says an attack exists; impact analysis
//! says why it matters. A stealthy attack leaves the residual untouched
//! but moves the state estimate, so every quantity the EMS derives from
//! it — line flows, injections, security margins — is wrong by a
//! computable amount. The most operationally dangerous form is **overload
//! masking**: the attacker makes a loaded line look comfortably inside
//! its thermal rating (or a healthy line look overloaded, triggering
//! spurious redispatch).

use crate::attack::AttackVector;
use sta_estimator::dcflow::OperatingPoint;
use sta_grid::{LineId, TestSystem};
use std::fmt;

/// The operator's view of one line after the attack.
#[derive(Debug, Clone)]
pub struct LineImpact {
    /// The line.
    pub line: LineId,
    /// Physical flow (unchanged by the cyber attack).
    pub actual_flow: f64,
    /// Flow the EMS derives from the corrupted estimate.
    pub perceived_flow: f64,
    /// Thermal rating, if known.
    pub rating: Option<f64>,
}

impl LineImpact {
    /// Flow misperception introduced by the attack.
    pub fn error(&self) -> f64 {
        self.perceived_flow - self.actual_flow
    }

    /// The line is physically at/over its rating but looks safe.
    pub fn masks_overload(&self) -> bool {
        match self.rating {
            Some(r) => self.actual_flow.abs() >= r && self.perceived_flow.abs() < r,
            None => false,
        }
    }

    /// The line is physically safe but looks overloaded (spurious alarm).
    pub fn fakes_overload(&self) -> bool {
        match self.rating {
            Some(r) => self.actual_flow.abs() < r && self.perceived_flow.abs() >= r,
            None => false,
        }
    }
}

/// Full impact report of one attack at one operating point.
#[derive(Debug, Clone)]
pub struct ImpactReport {
    /// Per-line perception errors.
    pub lines: Vec<LineImpact>,
    /// Per-bus state-estimate displacement (radians).
    pub state_errors: Vec<f64>,
    /// Per-bus perceived-consumption error.
    pub injection_errors: Vec<f64>,
}

impl ImpactReport {
    /// Largest absolute line-flow misperception.
    pub fn max_flow_error(&self) -> f64 {
        self.lines.iter().fold(0.0f64, |m, l| m.max(l.error().abs()))
    }

    /// Lines whose physical overload the attack hides.
    pub fn masked_overloads(&self) -> Vec<LineId> {
        self.lines
            .iter()
            .filter(|l| l.masks_overload())
            .map(|l| l.line)
            .collect()
    }

    /// Lines the attack makes look overloaded although they are not.
    pub fn spurious_overloads(&self) -> Vec<LineId> {
        self.lines
            .iter()
            .filter(|l| l.fakes_overload())
            .map(|l| l.line)
            .collect()
    }
}

impl fmt::Display for ImpactReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "max flow misperception {:.4} pu; {} masked / {} spurious overloads",
            self.max_flow_error(),
            self.masked_overloads().len(),
            self.spurious_overloads().len(),
        )?;
        for l in &self.lines {
            if l.error().abs() > 1e-9 {
                writeln!(
                    f,
                    "  line {}: actual {:+.4}, perceived {:+.4}{}",
                    l.line.0 + 1,
                    l.actual_flow,
                    l.perceived_flow,
                    match (l.masks_overload(), l.fakes_overload()) {
                        (true, _) => " ← OVERLOAD MASKED",
                        (_, true) => " ← SPURIOUS OVERLOAD",
                        _ => "",
                    }
                )?;
            }
        }
        Ok(())
    }
}

/// Computes the impact of `attack` at operating point `op`.
///
/// The perceived state is `θ̄ + Δθ` with `Δθ` taken from the attack
/// vector; perceived flows are evaluated on the topology the EMS maps
/// (exclusions removed, inclusions added), actual flows on the true
/// topology.
pub fn assess(sys: &TestSystem, op: &OperatingPoint, attack: &AttackVector) -> ImpactReport {
    let mut mapped = sys.topology.clone();
    for &l in &attack.excluded_lines {
        mapped = mapped.with_line_open(l);
    }
    for &l in &attack.included_lines {
        mapped = mapped.with_line_closed(l);
    }
    let b = sys.grid.num_buses();
    let perceived_theta: Vec<f64> = (0..b)
        .map(|j| op.theta[j] + attack.state_changes[j])
        .collect();
    let mut lines = Vec::with_capacity(sys.grid.num_lines());
    let mut injection_errors = vec![0.0f64; b];
    for (i, line) in sys.grid.lines().iter().enumerate() {
        let id = LineId(i);
        let actual = if sys.topology.is_in_service(id) {
            op.line_flows[i]
        } else {
            0.0
        };
        let perceived = if mapped.is_in_service(id) {
            line.admittance
                * (perceived_theta[line.from.0] - perceived_theta[line.to.0])
        } else {
            0.0
        };
        let err = perceived - actual;
        injection_errors[line.to.0] += err;
        injection_errors[line.from.0] -= err;
        lines.push(LineImpact {
            line: id,
            actual_flow: actual,
            perceived_flow: perceived,
            rating: line.rating,
        });
    }
    ImpactReport {
        lines,
        state_errors: attack.state_changes.clone(),
        injection_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackModel, AttackVerifier, StateTarget};
    use sta_estimator::dcflow;
    use sta_grid::{ieee14, BusId};

    fn setup() -> (sta_grid::TestSystem, OperatingPoint) {
        let sys = ieee14::system_unsecured();
        let injections = dcflow::synthetic_injections(14, 0);
        let op = dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)
            .unwrap();
        (sys, op)
    }

    #[test]
    fn no_attack_no_impact() {
        let (sys, op) = setup();
        let nothing = AttackVector {
            state_changes: vec![0.0; 14],
            ..AttackVector::default()
        };
        let report = assess(&sys, &op, &nothing);
        assert!(report.max_flow_error() < 1e-12);
        assert!(report.masked_overloads().is_empty());
    }

    #[test]
    fn verified_attack_misleads_flows() {
        let (sys, op) = setup();
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(14).target(BusId(9), StateTarget::MustChange);
        let attack = verifier.verify(&model).expect_feasible();
        let report = assess(&sys, &op, &attack);
        assert!(report.max_flow_error() > 1e-6);
        // Perception errors are exactly the flow changes the state shifts
        // imply: error_i = y_i(Δθ_f − Δθ_t) for every in-service line.
        for (i, line) in sys.grid.lines().iter().enumerate() {
            let expected = line.admittance
                * (attack.state_changes[line.from.0] - attack.state_changes[line.to.0]);
            assert!(
                (report.lines[i].error() - expected).abs() < 1e-9,
                "line {}",
                i + 1
            );
        }
    }

    #[test]
    fn overload_masking_detected() {
        // Build a system whose line 1 is physically overloaded, then an
        // attack perception that brings it under the rating.
        let (mut sys, op) = setup();
        // Rate line 1 just under its actual loading.
        let actual = op.line_flows[0].abs();
        assert!(actual > 0.0);
        let mut lines = sys.grid.lines().to_vec();
        lines[0] = lines[0].clone().with_rating(actual * 0.9);
        sys.grid = sta_grid::Grid::new(14, lines);
        // Craft a perception shift that reduces line 1's apparent flow:
        // line 1 runs 1→2, flow y(θ1−θ2); increase θ2's perceived angle.
        let shrink = -op.line_flows[0] * 0.5 / sys.grid.line(LineId(0)).admittance;
        let mut state_changes = vec![0.0; 14];
        state_changes[1] = -shrink; // θ2 + Δ reduces (θ1 − θ2) by shrink... sign below
        let attack = AttackVector { state_changes, ..AttackVector::default() };
        let report = assess(&sys, &op, &attack);
        let li = &report.lines[0];
        // Whichever direction, perception moved; if it moved under the
        // rating the mask flag must fire.
        if li.perceived_flow.abs() < actual * 0.9 {
            assert!(li.masks_overload());
            assert_eq!(report.masked_overloads(), vec![LineId(0)]);
        } else {
            assert!(li.error().abs() > 1e-9);
        }
    }

    #[test]
    fn spurious_overload_detected() {
        let (mut sys, op) = setup();
        // Rate line 1 generously, then push perception past it.
        let actual = op.line_flows[0];
        let rating = actual.abs() * 2.0 + 1.0;
        let mut lines = sys.grid.lines().to_vec();
        lines[0] = lines[0].clone().with_rating(rating);
        sys.grid = sta_grid::Grid::new(14, lines);
        let y = sys.grid.line(LineId(0)).admittance;
        let mut state_changes = vec![0.0; 14];
        // Increase perceived θ1−θ2 so flow looks > rating.
        state_changes[1] = -(rating + 1.0 - actual) / y;
        let attack = AttackVector { state_changes, ..AttackVector::default() };
        let report = assess(&sys, &op, &attack);
        assert!(report.lines[0].fakes_overload());
        assert_eq!(report.spurious_overloads(), vec![LineId(0)]);
    }

    #[test]
    fn excluded_line_perceived_as_zero() {
        let (sys, op) = setup();
        let verifier = AttackVerifier::new(&sys);
        // The Objective-2 topology attack: line 13 excluded.
        let mut model = AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .secure_measurement(sta_grid::MeasurementId(45))
            .with_topology_attack();
        for j in 0..14 {
            if j != 11 {
                model = model.target(BusId(j), StateTarget::MustNotChange);
            }
        }
        let attack = verifier.verify(&model).expect_feasible();
        assert_eq!(attack.excluded_lines, vec![LineId(12)]);
        let report = assess(&sys, &op, &attack);
        let li = &report.lines[12];
        assert_eq!(li.perceived_flow, 0.0);
        // The physical line still carries its base flow — the whole
        // flow is misperceived.
        assert!((li.error() + op.line_flows[12]).abs() < 1e-9);
    }
}
