//! Criterion benchmarks behind Figure 4: UFDI attack verification time
//! across system sizes, measurement densities, attacker resource limits
//! and sat/unsat polarity.
//!
//! Run with: `cargo bench -p sta-bench --bench fig4`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sta_bench::{
    sat_scenario, system_for, target_states, time_verification, unsat_scenario,
    with_taken_fraction,
};

fn fig4a_buses(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_verification_vs_buses");
    group.sample_size(10);
    for &b in &[14usize, 30] {
        let sys = system_for(b);
        let model = sat_scenario(&sys, target_states(b)[1]);
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            bench.iter(|| time_verification(&sys, &model));
        });
    }
    group.finish();
}

fn fig4b_measurement_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_verification_vs_taken_fraction");
    group.sample_size(10);
    for &pct in &[60u32, 80, 100] {
        let sys = with_taken_fraction(&system_for(30), pct as f64 / 100.0);
        let model = sat_scenario(&sys, target_states(30)[1]);
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |bench, _| {
            bench.iter(|| time_verification(&sys, &model));
        });
    }
    group.finish();
}

fn fig4c_resource_limit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4c_verification_vs_resource_limit");
    group.sample_size(10);
    for &t_cz in &[8usize, 16, 24] {
        let sys = system_for(14);
        let model =
            sat_scenario(&sys, target_states(14)[1]).max_altered_measurements(t_cz);
        group.bench_with_input(BenchmarkId::from_parameter(t_cz), &t_cz, |bench, _| {
            bench.iter(|| time_verification(&sys, &model));
        });
    }
    group.finish();
}

fn fig4d_sat_vs_unsat(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4d_sat_vs_unsat");
    group.sample_size(10);
    let sys = system_for(14);
    let t = target_states(14)[1];
    let sat = sat_scenario(&sys, t);
    let unsat = unsat_scenario(&sys, t);
    group.bench_function("sat_14bus", |bench| {
        bench.iter(|| time_verification(&sys, &sat));
    });
    group.bench_function("unsat_14bus", |bench| {
        bench.iter(|| time_verification(&sys, &unsat));
    });
    group.finish();
}

criterion_group!(
    fig4,
    fig4a_buses,
    fig4b_measurement_density,
    fig4c_resource_limit,
    fig4d_sat_vs_unsat
);
criterion_main!(fig4);
