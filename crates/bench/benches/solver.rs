//! Criterion benchmarks of the SMT substrate itself (not in the paper;
//! used to track the solver's own performance over time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sta_smt::{BoolVar, Formula, LinExpr, LinExprCmp, Rational, Solver};

/// Pigeonhole principle: n+1 pigeons into n holes (unsat, pure SAT).
fn pigeonhole(n: usize) -> Solver {
    let mut solver = Solver::new();
    let vars: Vec<Vec<BoolVar>> = (0..n + 1)
        .map(|_| (0..n).map(|_| solver.new_bool()).collect())
        .collect();
    for pigeon in &vars {
        solver.assert_formula(&Formula::or(
            pigeon.iter().map(|&v| Formula::var(v)).collect(),
        ));
    }
    for hole in 0..n {
        for p1 in 0..n + 1 {
            for p2 in p1 + 1..n + 1 {
                solver.assert_formula(&Formula::or(vec![
                    Formula::var(vars[p1][hole]).not(),
                    Formula::var(vars[p2][hole]).not(),
                ]));
            }
        }
    }
    solver
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_pigeonhole_unsat");
    group.sample_size(10);
    for &n in &[5usize, 6, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut solver = pigeonhole(n);
                assert!(!solver.check().is_sat());
            });
        });
    }
    group.finish();
}

/// A chain of linear constraints: x_{i+1} = a·x_i + b with bounds — pure
/// simplex work.
fn bench_lra_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_lra_chain_sat");
    group.sample_size(10);
    for &n in &[50usize, 150] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| {
                let mut solver = Solver::new();
                let xs: Vec<_> = (0..n).map(|_| solver.new_real()).collect();
                solver
                    .assert_formula(&LinExpr::var(xs[0]).eq_expr(LinExpr::from(1)));
                for i in 0..n - 1 {
                    solver.assert_formula(
                        &LinExpr::var(xs[i + 1]).eq_expr(
                            LinExpr::var(xs[i]) * Rational::new(2, 3)
                                + LinExpr::from(1),
                        ),
                    );
                }
                solver.assert_formula(
                    &LinExpr::var(xs[n - 1]).le(LinExpr::from(4)),
                );
                assert!(solver.check().is_sat());
            });
        });
    }
    group.finish();
}

/// Cardinality-heavy instance: exactly-k over many Booleans plus linked
/// arithmetic guards.
fn bench_cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_cardinality_sat");
    group.sample_size(10);
    for &n in &[40usize, 80] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| {
                let mut solver = Solver::new();
                let ps: Vec<_> = (0..n).map(|_| solver.new_bool()).collect();
                let mut sum = LinExpr::zero();
                for &p in &ps {
                    let x = solver.new_real();
                    solver.assert_formula(&Formula::var(p).implies(
                        LinExpr::var(x).eq_expr(LinExpr::from(1)),
                    ));
                    solver.assert_formula(&Formula::var(p).not().implies(
                        LinExpr::var(x).eq_expr(LinExpr::from(0)),
                    ));
                    sum = sum + LinExpr::var(x);
                }
                solver.assert_formula(&Formula::exactly(
                    ps.iter().map(|&p| Formula::var(p)).collect(),
                    n / 4,
                ));
                solver.assert_formula(&sum.ge(LinExpr::from((n / 4) as i64)));
                assert!(solver.check().is_sat());
            });
        });
    }
    group.finish();
}

criterion_group!(solver, bench_pigeonhole, bench_lra_chain, bench_cardinality);
criterion_main!(solver);
