//! Criterion benchmarks behind Figure 5: security-architecture synthesis
//! time across system sizes, measurement densities, attacker resource
//! limits, and the unsat budget regime.
//!
//! Run with: `cargo bench -p sta-bench --bench fig5`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sta_bench::{
    synthesis_attacker, synthesis_budget, system_for, time_synthesis,
    with_taken_fraction,
};
use sta_core::synthesis::SynthesisConfig;

fn fig5a_buses(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_synthesis_vs_buses");
    group.sample_size(10);
    for &b in &[14usize, 30] {
        let sys = system_for(b);
        let attacker = synthesis_attacker(&sys, 0.15);
        let config = SynthesisConfig::with_budget(synthesis_budget(b));
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            bench.iter(|| time_synthesis(&sys, &attacker, &config));
        });
    }
    group.finish();
}

fn fig5b_measurement_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_synthesis_vs_taken_fraction");
    group.sample_size(10);
    for &pct in &[80u32, 100] {
        let sys = with_taken_fraction(&system_for(14), pct as f64 / 100.0);
        let attacker = synthesis_attacker(&sys, 0.15);
        let config = SynthesisConfig::with_budget(synthesis_budget(14));
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |bench, _| {
            bench.iter(|| time_synthesis(&sys, &attacker, &config));
        });
    }
    group.finish();
}

fn fig5c_resource_limit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5c_synthesis_vs_attacker_resources");
    group.sample_size(10);
    for &pct in &[15u32, 30] {
        let sys = system_for(14);
        let attacker = synthesis_attacker(&sys, pct as f64 / 100.0);
        let config = SynthesisConfig::with_budget(synthesis_budget(14));
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |bench, _| {
            bench.iter(|| time_synthesis(&sys, &attacker, &config));
        });
    }
    group.finish();
}

fn fig5d_unsat_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5d_synthesis_unsat_budget");
    group.sample_size(10);
    // A 14-bus attacker whose minimum architecture needs several buses;
    // budgets below that time the exhaustive-unsat regime.
    let sys = system_for(14);
    let attacker = sta_core::AttackModel::new(14);
    for &budget in &[1usize, 2] {
        let config = SynthesisConfig::with_budget(budget);
        group.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &budget,
            |bench, _| {
                bench.iter(|| time_synthesis(&sys, &attacker, &config));
            },
        );
    }
    group.finish();
}

criterion_group!(
    fig5,
    fig5a_buses,
    fig5b_measurement_density,
    fig5c_resource_limit,
    fig5d_unsat_budget
);
criterion_main!(fig5);
