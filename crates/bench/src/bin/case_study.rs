//! Regenerates the paper's case studies: §III-I (Table II/III example,
//! Attack Objectives 1–2) and §IV-E (Fig. 3, synthesis Scenarios 1–3).
//!
//! Both studies run as campaigns: the §III-I objectives are one
//! verification campaign (witnesses pulled from the report for the
//! replay checks), the §IV-E scenarios one synthesis campaign.
//!
//! Usage: `cargo run --release -p sta-bench --bin case_study [--jobs N]`

use sta_bench::jobs_flag;
use sta_campaign::{run, CampaignSpec, JobResult};
use sta_core::attack::{AttackModel, StateTarget};
use sta_core::synthesis::SynthesisConfig;
use sta_core::validation;
use sta_grid::{ieee14, BusId, MeasurementId};

fn show(label: &str, result: &JobResult) {
    match &result.witness {
        Some(v) => {
            let mut meters: Vec<usize> =
                v.alterations.iter().map(|a| a.measurement.0 + 1).collect();
            meters.sort_unstable();
            let buses: Vec<usize> = v.compromised_buses.iter().map(|b| b.0 + 1).collect();
            println!("{label}: sat");
            println!("   measurements: {meters:?}");
            println!("   buses:        {buses:?}");
            if !v.excluded_lines.is_empty() {
                let excl: Vec<usize> = v.excluded_lines.iter().map(|l| l.0 + 1).collect();
                println!("   excluded lines: {excl:?}");
            }
        }
        None => println!("{label}: {}", result.verdict),
    }
}

fn main() {
    let jobs = jobs_flag();
    println!("# §III-I case study — IEEE 14-bus (Table II/III inputs)");
    let sys = ieee14::system_unsecured();
    let unknown = ieee14::EXAMPLE_UNKNOWN_LINES.map(|l| l - 1);

    let obj1 = |cz: usize, cb: usize, diff: bool| {
        let mut m = AttackModel::new(14)
            .unknown_lines(20, &unknown)
            .target(BusId(8), StateTarget::MustChange)
            .target(BusId(9), StateTarget::MustChange)
            .max_altered_measurements(cz)
            .max_compromised_buses(cb);
        if diff {
            m = m.require_different_change(BusId(8), BusId(9));
        }
        m
    };
    let mut obj2 = AttackModel::new(14)
        .unknown_lines(20, &unknown)
        .target(BusId(11), StateTarget::MustChange);
    for j in 0..14 {
        if j != 11 {
            obj2 = obj2.target(BusId(j), StateTarget::MustNotChange);
        }
    }
    let secured46 = obj2.clone().secure_measurement(MeasurementId(45));
    let topo = secured46.clone().with_topology_attack();

    let mut spec = CampaignSpec::new("case-study-verification");
    let case = spec.add_case("ieee14-unsecured", sys.clone());
    let labels = [
        "  ≤16 meas, ≤7 buses (paper: sat)",
        "  ≤13 meas, ≤6 buses (our minimum)",
        "  ≤12 meas (our infeasibility point)",
        "  equal change allowed, ≤15 meas, ≤6 buses (paper: sat)",
        "  baseline (paper: meters 12,32,39,46,53)",
        "  + measurement 46 secured (paper: unsat)",
        "  + topology poisoning (paper: meters 12,13,32,33,39,53, line 13 out)",
    ];
    spec.verify(case, labels[0], obj1(16, 7, true));
    spec.verify(case, labels[1], obj1(13, 6, true));
    spec.verify(case, labels[2], obj1(12, 14, true));
    spec.verify(case, labels[3], obj1(15, 6, false));
    let base_id = spec.verify(case, labels[4], obj2);
    spec.verify(case, labels[5], secured46);
    let topo_id = spec.verify(case, labels[6], topo);
    let report = run(&spec, jobs);

    println!();
    println!("Attack Objective 1: states 9, 10 — different amounts");
    for r in &report.results[..4] {
        show(&r.label, r);
    }

    println!();
    println!("Attack Objective 2: state 12 only");
    show(labels[4], &report.results[base_id]);
    if let Some(v) = &report.results[base_id].witness {
        let replay = validation::replay_default(&sys, v).unwrap();
        println!("   replay: {replay}");
    }
    show(labels[5], &report.results[base_id + 1]);
    show(labels[6], &report.results[topo_id]);
    if let Some(v) = &report.results[topo_id].witness {
        let replay = validation::replay_default(&sys, v).unwrap();
        println!("   replay under poisoned topology: {replay}");
    }

    println!();
    println!("# §IV-E case study — security architecture synthesis (Fig. 3)");
    let cfg = |b: usize| SynthesisConfig::with_budget(b).with_reference_secured();
    let s1 = AttackModel::new(14)
        .unknown_lines(20, &[2, 16])
        .max_altered_measurements(12);
    let s2 = AttackModel::new(14);
    let s3 = AttackModel::new(14).with_topology_attack();

    let mut spec = CampaignSpec::new("case-study-synthesis");
    let case = spec.add_case("ieee14-unsecured", sys);
    spec.synthesize(
        case,
        "Scenario 1 (limited attacker, budget 4; paper: {1,6,7,10})",
        s1,
        cfg(4),
    );
    spec.synthesize(case, "Scenario 2 (full knowledge, budget 4; paper: none)", s2.clone(), cfg(4));
    spec.synthesize(
        case,
        "Scenario 2 (full knowledge, budget 5; paper: {1,3,6,8,9})",
        s2,
        cfg(5),
    );
    spec.synthesize(case, "Scenario 3 (+ topology, budget 4; paper at 5: none)", s3.clone(), cfg(4));
    spec.synthesize(
        case,
        "Scenario 3 (+ topology, budget 5; paper needs 6: {1,4,6,8,10,14})",
        s3,
        cfg(5),
    );
    let report = run(&spec, jobs);
    for r in &report.results {
        let arch = match &r.architecture {
            Some(buses) => {
                let ids: Vec<String> = buses.iter().map(|b| (b.0 + 1).to_string()).collect();
                format!(
                    "secured buses {{{}}} ({} iterations)",
                    ids.join(", "),
                    r.iterations.unwrap_or(0)
                )
            }
            None => "no architecture".into(),
        };
        println!("{}: {}", r.label, arch);
    }
    println!();
    println!("(Divergences from the paper's exact thresholds trace to the");
    println!(" unpublished accessibility column of Table III; see EXPERIMENTS.md.)");
}
