//! Regenerates the paper's case studies: §III-I (Table II/III example,
//! Attack Objectives 1–2) and §IV-E (Fig. 3, synthesis Scenarios 1–3).
//!
//! Usage: `cargo run --release -p sta-bench --bin case_study`

use sta_core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta_core::synthesis::{SynthesisConfig, Synthesizer};
use sta_core::validation;
use sta_grid::{ieee14, BusId, MeasurementId};

fn show(label: &str, outcome: &sta_core::AttackOutcome) {
    match outcome.vector() {
        Some(v) => {
            let mut meters: Vec<usize> =
                v.alterations.iter().map(|a| a.measurement.0 + 1).collect();
            meters.sort_unstable();
            let buses: Vec<usize> = v.compromised_buses.iter().map(|b| b.0 + 1).collect();
            println!("{label}: sat");
            println!("   measurements: {meters:?}");
            println!("   buses:        {buses:?}");
            if !v.excluded_lines.is_empty() {
                let excl: Vec<usize> = v.excluded_lines.iter().map(|l| l.0 + 1).collect();
                println!("   excluded lines: {excl:?}");
            }
        }
        None => println!("{label}: unsat"),
    }
}

fn main() {
    println!("# §III-I case study — IEEE 14-bus (Table II/III inputs)");
    let sys = ieee14::system_unsecured();
    let verifier = AttackVerifier::new(&sys);
    let unknown = ieee14::EXAMPLE_UNKNOWN_LINES.map(|l| l - 1);

    println!();
    println!("Attack Objective 1: states 9, 10 — different amounts");
    let obj1 = |cz: usize, cb: usize, diff: bool| {
        let mut m = AttackModel::new(14)
            .unknown_lines(20, &unknown)
            .target(BusId(8), StateTarget::MustChange)
            .target(BusId(9), StateTarget::MustChange)
            .max_altered_measurements(cz)
            .max_compromised_buses(cb);
        if diff {
            m = m.require_different_change(BusId(8), BusId(9));
        }
        m
    };
    show("  ≤16 meas, ≤7 buses (paper: sat)", &verifier.verify(&obj1(16, 7, true)));
    show("  ≤13 meas, ≤6 buses (our minimum)", &verifier.verify(&obj1(13, 6, true)));
    show("  ≤12 meas (our infeasibility point)", &verifier.verify(&obj1(12, 14, true)));
    show(
        "  equal change allowed, ≤15 meas, ≤6 buses (paper: sat)",
        &verifier.verify(&obj1(15, 6, false)),
    );

    println!();
    println!("Attack Objective 2: state 12 only");
    let mut obj2 = AttackModel::new(14)
        .unknown_lines(20, &unknown)
        .target(BusId(11), StateTarget::MustChange);
    for j in 0..14 {
        if j != 11 {
            obj2 = obj2.target(BusId(j), StateTarget::MustNotChange);
        }
    }
    let base = verifier.verify(&obj2);
    show("  baseline (paper: meters 12,32,39,46,53)", &base);
    if let Some(v) = base.vector() {
        let replay = validation::replay_default(&sys, v).unwrap();
        println!("   replay: {replay}");
    }
    let secured46 = obj2.clone().secure_measurement(MeasurementId(45));
    show("  + measurement 46 secured (paper: unsat)", &verifier.verify(&secured46));
    let topo = secured46.with_topology_attack();
    let revived = verifier.verify(&topo);
    show(
        "  + topology poisoning (paper: meters 12,13,32,33,39,53, line 13 out)",
        &revived,
    );
    if let Some(v) = revived.vector() {
        let replay = validation::replay_default(&sys, v).unwrap();
        println!("   replay under poisoned topology: {replay}");
    }

    println!();
    println!("# §IV-E case study — security architecture synthesis (Fig. 3)");
    let synth = Synthesizer::new(&sys);
    let cfg = |b: usize| SynthesisConfig::with_budget(b).with_reference_secured();
    let arch = |o: &sta_core::SynthesisOutcome| match o.architecture() {
        Some(a) => a.to_string(),
        None => "no architecture".into(),
    };

    let s1 = AttackModel::new(14)
        .unknown_lines(20, &[2, 16])
        .max_altered_measurements(12);
    println!(
        "Scenario 1 (limited attacker, budget 4; paper: {{1,6,7,10}}): {}",
        arch(&synth.synthesize(&s1, &cfg(4)))
    );

    let s2 = AttackModel::new(14);
    println!(
        "Scenario 2 (full knowledge, budget 4; paper: none): {}",
        arch(&synth.synthesize(&s2, &cfg(4)))
    );
    println!(
        "Scenario 2 (full knowledge, budget 5; paper: {{1,3,6,8,9}}): {}",
        arch(&synth.synthesize(&s2, &cfg(5)))
    );

    let s3 = AttackModel::new(14).with_topology_attack();
    println!(
        "Scenario 3 (+ topology, budget 4; paper at 5: none): {}",
        arch(&synth.synthesize(&s3, &cfg(4)))
    );
    println!(
        "Scenario 3 (+ topology, budget 5; paper needs 6: {{1,4,6,8,10,14}}): {}",
        arch(&synth.synthesize(&s3, &cfg(5)))
    );
    println!();
    println!("(Divergences from the paper's exact thresholds trace to the");
    println!(" unpublished accessibility column of Table III; see EXPERIMENTS.md.)");
}
