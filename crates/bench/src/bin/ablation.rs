//! Ablation studies of the design choices: synthesis blocking strategy
//! (counterexample-hitting vs the paper's Algorithm 1), counterexample
//! batching, and the defense baselines compared head-to-head.
//!
//! Usage: `cargo run --release -p sta-bench --bin ablation`

use sta_bench::{print_table, Row};
use sta_core::attack::AttackModel;
use sta_core::baselines;
use sta_core::synthesis::{BlockingStrategy, SynthesisConfig, Synthesizer};
use sta_grid::ieee14;
use std::time::Instant;

fn main() {
    let sys = ieee14::system_unsecured();
    let synth = Synthesizer::new(&sys);

    // --- Ablation 1: refinement strategy -------------------------------
    println!("# Ablation 1 — synthesis refinement strategy (14-bus, scenario 2)");
    let attacker = AttackModel::new(14);
    let mut rows = Vec::new();
    let variants: [(&str, BlockingStrategy, usize); 3] = [
        ("paper Algorithm 1 (candidate-only)", BlockingStrategy::CandidateOnly, 1),
        ("hitting, no batching", BlockingStrategy::CounterexampleHitting, 1),
        ("hitting, 4 chained (default)", BlockingStrategy::CounterexampleHitting, 4),
    ];
    for (label, strategy, batch) in variants {
        let mut config = SynthesisConfig::with_budget(5).with_reference_secured();
        config.blocking = strategy;
        config.counterexamples_per_round = batch;
        let start = Instant::now();
        let outcome = synth.synthesize(&attacker, &config);
        let secs = start.elapsed().as_secs_f64();
        let (found, iters) = match &outcome {
            sta_core::SynthesisOutcome::Architecture(a) => (1.0, a.iterations),
            sta_core::SynthesisOutcome::NoSolution { iterations } => (0.0, *iterations),
            sta_core::SynthesisOutcome::Inconclusive { iterations } => (0.0, *iterations),
        };
        rows.push(
            Row::new(label)
                .cell("time (s)", secs)
                .cell("iterations", iters as f64)
                .cell("solved", found),
        );
    }
    print_table("budget-5 synthesis against the unconstrained attacker", &rows);

    // --- Ablation 2: defenses head-to-head ------------------------------
    println!();
    println!("# Ablation 2 — defense mechanisms against the unconstrained attacker");
    let mut rows = Vec::new();

    let start = Instant::now();
    let basic = baselines::bobba_protection(&sys).expect("observable");
    rows.push(
        Row::new("Bobba basic-measurement set")
            .cell("units secured", basic.len() as f64)
            .cell("granularity=meas", 1.0)
            .cell("time (s)", start.elapsed().as_secs_f64()),
    );

    let start = Instant::now();
    let greedy = baselines::kim_poor_greedy(&sys, &attacker).expect("converges");
    rows.push(
        Row::new("Kim–Poor-style greedy (buses)")
            .cell("units secured", greedy.secured_buses.len() as f64)
            .cell("granularity=meas", 0.0)
            .cell("time (s)", start.elapsed().as_secs_f64()),
    );

    let start = Instant::now();
    let outcome = synth.synthesize(&attacker, &SynthesisConfig::with_budget(5));
    if let Some(arch) = outcome.architecture() {
        rows.push(
            Row::new("synthesis (buses, budget 5)")
                .cell("units secured", arch.secured_buses.len() as f64)
                .cell("granularity=meas", 0.0)
                .cell("time (s)", start.elapsed().as_secs_f64()),
        );
    }

    let start = Instant::now();
    if let Some((set, _)) = synth.synthesize_measurements(&attacker, 13) {
        rows.push(
            Row::new("synthesis (measurements, budget 13)")
                .cell("units secured", set.len() as f64)
                .cell("granularity=meas", 1.0)
                .cell("time (s)", start.elapsed().as_secs_f64()),
        );
    }
    print_table("defense comparison (IEEE 14-bus, unsecured baseline)", &rows);
    println!();
    println!("(Bobba's 13 measurements are provably minimal at measurement");
    println!(" granularity; bus-level synthesis trades a coarser unit for");
    println!(" far fewer sites to harden.)");
}
