//! Ablation studies of the design choices: synthesis blocking strategy
//! (counterexample-hitting vs the paper's Algorithm 1), counterexample
//! batching, and the defense baselines compared head-to-head.
//!
//! Usage: `cargo run --release -p sta-bench --bin ablation [--jobs N]`

use sta_bench::{jobs_flag, print_table, Row};
use sta_campaign::{run, CampaignSpec, Verdict};
use sta_core::attack::AttackModel;
use sta_core::baselines;
use sta_core::synthesis::{BlockingStrategy, SynthesisConfig, Synthesizer};
use sta_grid::ieee14;
use std::time::Instant;

fn main() {
    let jobs = jobs_flag();
    let attacker = AttackModel::new(14);

    // --- Ablation 1: refinement strategy -------------------------------
    println!("# Ablation 1 — synthesis refinement strategy (14-bus, scenario 2)");
    let variants: [(&str, BlockingStrategy, usize); 3] = [
        ("paper Algorithm 1 (candidate-only)", BlockingStrategy::CandidateOnly, 1),
        ("hitting, no batching", BlockingStrategy::CounterexampleHitting, 1),
        ("hitting, 4 chained (default)", BlockingStrategy::CounterexampleHitting, 4),
    ];
    let mut spec = CampaignSpec::new("ablation-strategy");
    let case = spec.add_case("ieee14-unsecured", ieee14::system_unsecured());
    for (label, strategy, batch) in variants {
        let mut config = SynthesisConfig::with_budget(5).with_reference_secured();
        config.blocking = strategy;
        config.counterexamples_per_round = batch;
        spec.synthesize(case, label, attacker.clone(), config);
    }
    let report = run(&spec, jobs);
    let rows: Vec<Row> = report
        .results
        .iter()
        .map(|r| {
            Row::new(r.label.clone())
                .cell("time (s)", r.wall.as_secs_f64())
                .cell("iterations", r.iterations.unwrap_or(0) as f64)
                .cell(
                    "solved",
                    if r.verdict == Verdict::Architecture { 1.0 } else { 0.0 },
                )
        })
        .collect();
    print_table("budget-5 synthesis against the unconstrained attacker", &rows);

    // --- Ablation 2: defenses head-to-head ------------------------------
    println!();
    println!("# Ablation 2 — defense mechanisms against the unconstrained attacker");
    let sys = ieee14::system_unsecured();
    let synth = Synthesizer::new(&sys);
    let mut rows = Vec::new();

    let start = Instant::now();
    let basic = baselines::bobba_protection(&sys).expect("observable");
    rows.push(
        Row::new("Bobba basic-measurement set")
            .cell("units secured", basic.len() as f64)
            .cell("granularity=meas", 1.0)
            .cell("time (s)", start.elapsed().as_secs_f64()),
    );

    let start = Instant::now();
    let greedy = baselines::kim_poor_greedy(&sys, &attacker).expect("converges");
    rows.push(
        Row::new("Kim–Poor-style greedy (buses)")
            .cell("units secured", greedy.secured_buses.len() as f64)
            .cell("granularity=meas", 0.0)
            .cell("time (s)", start.elapsed().as_secs_f64()),
    );

    // Bus-granular synthesis as a one-job campaign (same engine as the
    // strategy ablation above).
    let mut spec = CampaignSpec::new("ablation-defense");
    let case = spec.add_case("ieee14-unsecured", ieee14::system_unsecured());
    spec.synthesize(
        case,
        "synthesis (buses, budget 5)",
        attacker.clone(),
        SynthesisConfig::with_budget(5),
    );
    let report = run(&spec, 1);
    let r = &report.results[0];
    if let Some(arch) = &r.architecture {
        rows.push(
            Row::new(r.label.clone())
                .cell("units secured", arch.len() as f64)
                .cell("granularity=meas", 0.0)
                .cell("time (s)", r.wall.as_secs_f64()),
        );
    }

    // Measurement-granular synthesis has no campaign job kind (it is a
    // single call, not a sweep); time it directly.
    let start = Instant::now();
    if let Some((set, _)) = synth.synthesize_measurements(&attacker, 13) {
        rows.push(
            Row::new("synthesis (measurements, budget 13)")
                .cell("units secured", set.len() as f64)
                .cell("granularity=meas", 1.0)
                .cell("time (s)", start.elapsed().as_secs_f64()),
        );
    }
    print_table("defense comparison (IEEE 14-bus, unsecured baseline)", &rows);
    println!();
    println!("(Bobba's 13 measurements are provably minimal at measurement");
    println!(" granularity; bus-level synthesis trades a coarser unit for");
    println!(" far fewer sites to harden.)");
}
