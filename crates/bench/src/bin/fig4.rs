//! Regenerates the paper's Figure 4 (verification-model scaling).
//!
//! Usage: `cargo run --release -p sta-bench --bin fig4 [--full] [--jobs N]`
//!
//! `--full` extends the bus-count sweeps to the 118- and 300-bus cases
//! (minutes of runtime); the default covers 14/30/57. `--jobs N` runs
//! the underlying campaigns on N workers (default 1: serial timing is
//! what the figures measure).

use sta_bench::{fig4a, fig4b, fig4c, fig4d, jobs_flag, print_table, ALL_SIZES, DEFAULT_SIZES};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full { &ALL_SIZES } else { &DEFAULT_SIZES };
    let jobs = jobs_flag();

    println!("# Figure 4 — UFDI attack verification model scaling");
    println!("(paper §V-B; shapes, not absolute times, are the comparison)");

    print_table(
        "Fig 4(a): execution time vs number of buses (3 experiments each)",
        &fig4a(sizes, jobs),
    );
    print_table(
        "Fig 4(b): execution time vs % of taken measurements",
        &fig4b(&[30, 57], &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0], jobs),
    );
    print_table(
        "Fig 4(c): execution time vs attacker resource limit T_CZ",
        &fig4c(&[14, 30], &[4, 8, 12, 16, 20, 24], jobs),
    );
    print_table(
        "Fig 4(d): satisfiable vs unsatisfiable execution time",
        &fig4d(sizes, jobs),
    );
}
