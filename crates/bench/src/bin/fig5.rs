//! Regenerates the paper's Figure 5 (synthesis-mechanism scaling).
//!
//! Usage: `cargo run --release -p sta-bench --bin fig5 [--full] [--jobs N]`

use sta_bench::{fig5a, fig5b, fig5c, fig5d, jobs_flag, print_table};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full { &[14, 30, 57] } else { &[14, 30] };
    let jobs = jobs_flag();

    println!("# Figure 5 — security architecture synthesis scaling");
    println!("(paper §V-C; shapes, not absolute times, are the comparison)");

    print_table(
        "Fig 5(a): synthesis time vs number of buses (90% / 100% taken)",
        &fig5a(sizes, jobs),
    );
    print_table(
        "Fig 5(b): synthesis time vs % of taken measurements",
        &fig5b(&[14, 30], &[0.7, 0.8, 0.9, 1.0], jobs),
    );
    print_table(
        "Fig 5(c): synthesis time vs attacker resource limit (% of measurements)",
        &fig5c(&[14, 30], &[0.1, 0.15, 0.2, 0.3, 0.4], jobs),
    );
    print_table(
        "Fig 5(d): unsat synthesis time vs operator budget (30-bus)",
        &fig5d(jobs),
    );
}
