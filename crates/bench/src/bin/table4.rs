//! Regenerates the paper's Table IV (solver memory per system size).
//!
//! Usage: `cargo run --release -p sta-bench --bin table4 [--full] [--jobs N]`

use sta_bench::{jobs_flag, print_table, table4, ALL_SIZES, DEFAULT_SIZES};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full { &ALL_SIZES } else { &DEFAULT_SIZES };

    println!("# Table IV — memory requirement (MB) of the two formal models");
    println!("(Z3's telemetry replaced by explicit allocation accounting;");
    println!(" the reproduced claim is near-linear growth in bus count)");
    print_table("Table IV", &table4(sizes, jobs_flag()));
}
