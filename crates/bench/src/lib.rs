//! Shared harness for regenerating every figure and table of the paper's
//! evaluation (§V).
//!
//! Each `fig*`/`table*` function returns printable rows; the `fig4`,
//! `fig5`, `table4` and `case_study` binaries render them, and the
//! Criterion benches in `benches/` wrap the same scenario builders for
//! statistically sound timing. Absolute numbers will differ from the
//! paper's Core-i5/Z3 testbed; the reproduced object is the *shape* of
//! each curve (see `EXPERIMENTS.md`).

use sta_core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta_core::synthesis::{SynthesisConfig, Synthesizer};
use sta_grid::{synthetic, BusId, TestSystem};
use sta_smt::SolverStats;
use std::time::Instant;

/// The IEEE case sizes of the paper's evaluation.
pub const ALL_SIZES: [usize; 5] = [14, 30, 57, 118, 300];

/// Sizes exercised by default (large cases opt in via `--full`).
pub const DEFAULT_SIZES: [usize; 3] = [14, 30, 57];

/// A labeled row of named numeric cells, the output unit of every
/// experiment function.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. the bus count or sweep value).
    pub label: String,
    /// `(column, value)` cells.
    pub cells: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>) -> Self {
        Row { label: label.into(), cells: Vec::new() }
    }

    /// Adds a cell.
    pub fn cell(mut self, name: impl Into<String>, value: f64) -> Self {
        self.cells.push((name.into(), value));
        self
    }
}

/// Prints rows as an aligned text table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!();
    println!("## {title}");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let mut headers: Vec<String> = Vec::new();
    for row in rows {
        for (name, _) in &row.cells {
            if !headers.contains(name) {
                headers.push(name.clone());
            }
        }
    }
    print!("{:>26}", "case");
    for h in &headers {
        print!(" {h:>16}");
    }
    println!();
    for row in rows {
        print!("{:>26}", row.label);
        for h in &headers {
            match row.cells.iter().find(|(n, _)| n == h) {
                Some((_, v)) => print!(" {v:>16.4}"),
                None => print!(" {:>16}", "-"),
            }
        }
        println!();
    }
}

/// Loads the test system for a paper case size (14 exact, others
/// synthetic at IEEE dimensions).
pub fn system_for(size: usize) -> TestSystem {
    synthetic::ieee_case(size)
}

/// Three deterministic single-state attack targets per system size (the
/// paper runs three experiments per case, Fig. 4a).
pub fn target_states(num_buses: usize) -> [usize; 3] {
    [num_buses / 4, num_buses / 2, (3 * num_buses) / 4]
}

/// A satisfiable single-target verification scenario.
pub fn sat_scenario(sys: &TestSystem, target: usize) -> AttackModel {
    AttackModel::new(sys.grid.num_buses()).target(BusId(target), StateTarget::MustChange)
}

/// An unsatisfiable scenario: the same target with a measurement budget
/// too small for any stealthy attack (a single altered measurement can
/// never be stealthy on a redundantly metered line).
pub fn unsat_scenario(sys: &TestSystem, target: usize) -> AttackModel {
    sat_scenario(sys, target).max_altered_measurements(1)
}

/// Times one verification; returns `(seconds, feasible, stats)`.
pub fn time_verification(
    sys: &TestSystem,
    model: &AttackModel,
) -> (f64, bool, SolverStats) {
    let verifier = AttackVerifier::new(sys);
    let start = Instant::now();
    let report = verifier.verify_with_stats(model);
    (start.elapsed().as_secs_f64(), report.outcome.is_feasible(), report.stats)
}

/// Times one synthesis run; returns `(seconds, found, iterations)`.
pub fn time_synthesis(
    sys: &TestSystem,
    attacker: &AttackModel,
    config: &SynthesisConfig,
) -> (f64, bool, usize) {
    let synth = Synthesizer::new(sys);
    let start = Instant::now();
    let outcome = synth.synthesize(attacker, config);
    let secs = start.elapsed().as_secs_f64();
    match outcome {
        sta_core::SynthesisOutcome::Architecture(a) => (secs, true, a.iterations),
        sta_core::SynthesisOutcome::NoSolution { iterations } => (secs, false, iterations),
        sta_core::SynthesisOutcome::Inconclusive { iterations } => (secs, false, iterations),
    }
}

/// A taken-measurement sweep variant of a system.
pub fn with_taken_fraction(sys: &TestSystem, fraction: f64) -> TestSystem {
    let mut out = sys.clone();
    out.measurements = sys.measurements.with_taken_fraction(fraction);
    out
}

/// The standard synthesis attacker for the Fig. 5 sweeps: resource
/// capped at `fraction` of the potential measurements.
pub fn synthesis_attacker(sys: &TestSystem, fraction: f64) -> AttackModel {
    let m = sys.grid.num_potential_measurements();
    AttackModel::new(sys.grid.num_buses())
        .max_altered_measurements(((m as f64) * fraction).round() as usize)
}

// ---------------------------------------------------------------------
// Figure 4: verification-model scaling
// ---------------------------------------------------------------------

/// Fig. 4(a): execution time vs bus count, three target choices each.
pub fn fig4a(sizes: &[usize]) -> Vec<Row> {
    sizes
        .iter()
        .map(|&b| {
            let sys = system_for(b);
            let mut row = Row::new(format!("{b}-bus"));
            let mut total = 0.0;
            for (k, &t) in target_states(b).iter().enumerate() {
                let (secs, sat, _) = time_verification(&sys, &sat_scenario(&sys, t));
                assert!(sat, "fig4a scenarios are satisfiable");
                total += secs;
                row = row.cell(format!("exp{} (s)", k + 1), secs);
            }
            row.cell("avg (s)", total / 3.0)
        })
        .collect()
}

/// Fig. 4(b): execution time vs % of taken measurements (30/57-bus).
pub fn fig4b(sizes: &[usize], fractions: &[f64]) -> Vec<Row> {
    fractions
        .iter()
        .map(|&f| {
            let mut row = Row::new(format!("{:.0}%", f * 100.0));
            for &b in sizes {
                let sys = with_taken_fraction(&system_for(b), f);
                let model = sat_scenario(&sys, target_states(b)[1]);
                let (secs, _, _) = time_verification(&sys, &model);
                row = row.cell(format!("{b}-bus (s)"), secs);
            }
            row
        })
        .collect()
}

/// Fig. 4(c): execution time vs attacker resource limit `T_CZ`
/// (14/30-bus).
pub fn fig4c(sizes: &[usize], limits: &[usize]) -> Vec<Row> {
    limits
        .iter()
        .map(|&t_cz| {
            let mut row = Row::new(format!("T_CZ={t_cz}"));
            for &b in sizes {
                let sys = system_for(b);
                let model = sat_scenario(&sys, target_states(b)[1])
                    .max_altered_measurements(t_cz);
                let (secs, _, _) = time_verification(&sys, &model);
                row = row.cell(format!("{b}-bus (s)"), secs);
            }
            row
        })
        .collect()
}

/// Fig. 4(d): satisfiable vs unsatisfiable execution time per system.
pub fn fig4d(sizes: &[usize]) -> Vec<Row> {
    sizes
        .iter()
        .map(|&b| {
            let sys = system_for(b);
            let t = target_states(b)[1];
            let (sat_secs, sat, _) = time_verification(&sys, &sat_scenario(&sys, t));
            let (unsat_secs, unsat, _) =
                time_verification(&sys, &unsat_scenario(&sys, t));
            assert!(sat && !unsat, "fig4d polarity");
            Row::new(format!("{b}-bus"))
                .cell("sat (s)", sat_secs)
                .cell("unsat (s)", unsat_secs)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 5: synthesis-mechanism scaling
// ---------------------------------------------------------------------

/// The synthesis budget used in the scaling sweeps.
pub fn synthesis_budget(num_buses: usize) -> usize {
    (num_buses / 3).max(4)
}

/// Fig. 5(a): synthesis time vs bus count, at 90% and 100% taken
/// measurements.
pub fn fig5a(sizes: &[usize]) -> Vec<Row> {
    sizes
        .iter()
        .map(|&b| {
            let mut row = Row::new(format!("{b}-bus"));
            for &f in &[0.9, 1.0] {
                let sys = with_taken_fraction(&system_for(b), f);
                let attacker = synthesis_attacker(&sys, 0.15);
                let config = SynthesisConfig::with_budget(synthesis_budget(b));
                let (secs, found, _) = time_synthesis(&sys, &attacker, &config);
                assert!(found, "fig5a budget must admit a solution ({b}-bus {f})");
                row = row.cell(format!("{:.0}% taken (s)", f * 100.0), secs);
            }
            row
        })
        .collect()
}

/// Fig. 5(b): synthesis time vs % taken measurements (30/57-bus).
pub fn fig5b(sizes: &[usize], fractions: &[f64]) -> Vec<Row> {
    fractions
        .iter()
        .map(|&f| {
            let mut row = Row::new(format!("{:.0}%", f * 100.0));
            for &b in sizes {
                let sys = with_taken_fraction(&system_for(b), f);
                let attacker = synthesis_attacker(&sys, 0.15);
                let config = SynthesisConfig::with_budget(synthesis_budget(b));
                let (secs, _, _) = time_synthesis(&sys, &attacker, &config);
                row = row.cell(format!("{b}-bus (s)"), secs);
            }
            row
        })
        .collect()
}

/// Fig. 5(c): synthesis time vs attacker resource limit (as % of total
/// measurements; 14/30-bus).
pub fn fig5c(sizes: &[usize], fractions: &[f64]) -> Vec<Row> {
    fractions
        .iter()
        .map(|&f| {
            let mut row = Row::new(format!("{:.0}%", f * 100.0));
            for &b in sizes {
                let sys = system_for(b);
                let attacker = synthesis_attacker(&sys, f);
                let config = SynthesisConfig::with_budget(synthesis_budget(b));
                let (secs, _, _) = time_synthesis(&sys, &attacker, &config);
                row = row.cell(format!("{b}-bus (s)"), secs);
            }
            row
        })
        .collect()
}

/// Fig. 5(d): unsatisfiable synthesis time vs operator budget, for two
/// attacker strengths on the 30-bus system. The paper's scenarios have
/// feasibility minima of 10 and 12 buses; ours are discovered at run
/// time and the sweep walks the budgets below each minimum.
pub fn fig5d() -> Vec<Row> {
    let sys = system_for(30);
    // Two attacker strengths: the stronger one needs more secured buses.
    let attackers = [
        ("weaker", synthesis_attacker(&sys, 0.2)),
        ("stronger", synthesis_attacker(&sys, 0.3)),
    ];
    let mut rows = Vec::new();
    for (label, attacker) in attackers {
        // A generous-budget run bounds the feasibility minimum b* from
        // above by its architecture size; walk downward with sat runs
        // until the first unsat budget (monotone, so that is b* − 1).
        let generous = SynthesisConfig::with_budget(sys.grid.num_buses() / 2);
        let synth = Synthesizer::new(&sys);
        let arch = match synth.synthesize(&attacker, &generous) {
            sta_core::SynthesisOutcome::Architecture(a) => a,
            _ => panic!("half the buses always suffice here"),
        };
        let mut b_star = arch.secured_buses.len();
        loop {
            let config = SynthesisConfig::with_budget(b_star - 1);
            let (_, found, _) = time_synthesis(&sys, &attacker, &config);
            if !found {
                break;
            }
            b_star -= 1;
        }
        // Time the unsat regime just below b*.
        for budget in (b_star.saturating_sub(2).max(1)..b_star).rev() {
            let config = SynthesisConfig::with_budget(budget);
            let (secs, found, iterations) = time_synthesis(&sys, &attacker, &config);
            assert!(!found);
            rows.push(
                Row::new(format!("{label} b*={b_star} budget={budget}"))
                    .cell("unsat time (s)", secs)
                    .cell("iterations", iterations as f64),
            );
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Table IV: memory complexity
// ---------------------------------------------------------------------

/// Table IV: estimated solver memory (MB) for the verification model and
/// the candidate-selection model, per system size.
pub fn table4(sizes: &[usize]) -> Vec<Row> {
    sizes
        .iter()
        .map(|&b| {
            let sys = system_for(b);
            let model = sat_scenario(&sys, target_states(b)[1]);
            let (_, _, stats) = time_verification(&sys, &model);
            let selection_mb = candidate_selection_memory(&sys);
            Row::new(format!("{b}-bus"))
                .cell("verification (MB)", stats.estimated_mb())
                .cell("selection (MB)", selection_mb)
        })
        .collect()
}

/// Builds and checks one candidate-selection model, returning its
/// estimated memory in MB.
///
/// Uses a paper-scale constant budget (`T_SB = 6`, the §IV-E ceiling):
/// the cardinality encoding grows with `b·T_SB`, and the paper's Table IV
/// sizes its selection model at fixed small operator budgets.
fn candidate_selection_memory(sys: &TestSystem) -> f64 {
    use sta_smt::{Formula, Solver};
    let b = sys.grid.num_buses();
    let mut solver = Solver::new();
    let sb: Vec<sta_smt::BoolVar> = (0..b).map(|_| solver.new_bool()).collect();
    solver.assert_formula(&Formula::at_most(
        sb.iter().map(|&v| Formula::var(v)).collect(),
        6,
    ));
    for (i, line) in sys.grid.lines().iter().enumerate() {
        let l = sys.grid.num_lines();
        let taken = sys.measurements.is_taken(sta_grid::MeasurementId(i))
            || sys.measurements.is_taken(sta_grid::MeasurementId(l + i));
        if taken {
            solver.assert_formula(&Formula::or(vec![
                Formula::var(sb[line.from.0]).not(),
                Formula::var(sb[line.to.0]).not(),
            ]));
        }
    }
    let _ = solver.check();
    solver.last_stats().map(|s| s.estimated_mb()).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_print_without_panic() {
        let rows = vec![
            Row::new("a").cell("x", 1.0).cell("y", 2.0),
            Row::new("b").cell("x", 3.0),
        ];
        print_table("smoke", &rows);
    }

    #[test]
    fn sat_and_unsat_scenarios_have_expected_polarity() {
        let sys = system_for(14);
        let t = target_states(14)[1];
        let (_, sat, _) = time_verification(&sys, &sat_scenario(&sys, t));
        let (_, unsat, _) = time_verification(&sys, &unsat_scenario(&sys, t));
        assert!(sat);
        assert!(!unsat);
    }

    #[test]
    fn fig4a_smallest_case_runs() {
        let rows = fig4a(&[14]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cells.len(), 4);
        assert!(rows[0].cells.iter().all(|(_, v)| *v >= 0.0));
    }

    #[test]
    fn table4_reports_positive_memory() {
        let rows = table4(&[14]);
        assert!(rows[0].cells.iter().all(|(_, v)| *v > 0.0));
    }
}
