//! Shared harness for regenerating every figure and table of the paper's
//! evaluation (§V).
//!
//! Each `fig*`/`table*` function builds a declarative [`CampaignSpec`]
//! and hands it to the campaign engine (`sta-campaign`), then folds the
//! per-job results back into printable rows; the `fig4`, `fig5`,
//! `table4`, `ablation` and `case_study` binaries render them, and the
//! Criterion benches in `benches/` wrap the same scenario builders for
//! statistically sound timing. Absolute numbers will differ from the
//! paper's Core-i5/Z3 testbed; the reproduced object is the *shape* of
//! each curve (see `EXPERIMENTS.md`).
//!
//! All sweep functions take a `workers` count for the campaign pool.
//! The binaries default to 1 — serial execution keeps per-job wall
//! times free of scheduling contention, which is what the figures
//! measure — and accept `--jobs N` for quick shape checks.

use sta_campaign::{run, CampaignReport, CampaignSpec, Verdict};
use sta_core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta_core::synthesis::{SynthesisConfig, Synthesizer};
use sta_grid::{synthetic, BusId, TestSystem};
use sta_smt::SolverStats;
use std::time::Instant;

/// The IEEE case sizes of the paper's evaluation.
pub const ALL_SIZES: [usize; 5] = [14, 30, 57, 118, 300];

/// Sizes exercised by default (large cases opt in via `--full`).
pub const DEFAULT_SIZES: [usize; 3] = [14, 30, 57];

/// A labeled row of named numeric cells, the output unit of every
/// experiment function.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. the bus count or sweep value).
    pub label: String,
    /// `(column, value)` cells.
    pub cells: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>) -> Self {
        Row { label: label.into(), cells: Vec::new() }
    }

    /// Adds a cell.
    pub fn cell(mut self, name: impl Into<String>, value: f64) -> Self {
        self.cells.push((name.into(), value));
        self
    }
}

/// Prints rows as an aligned text table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!();
    println!("## {title}");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let mut headers: Vec<String> = Vec::new();
    for row in rows {
        for (name, _) in &row.cells {
            if !headers.contains(name) {
                headers.push(name.clone());
            }
        }
    }
    print!("{:>26}", "case");
    for h in &headers {
        print!(" {h:>16}");
    }
    println!();
    for row in rows {
        print!("{:>26}", row.label);
        for h in &headers {
            match row.cells.iter().find(|(n, _)| n == h) {
                Some((_, v)) => print!(" {v:>16.4}"),
                None => print!(" {:>16}", "-"),
            }
        }
        println!();
    }
}

/// Parses the shared `--jobs N` flag of the bench binaries (campaign
/// worker count). Defaults to 1.
pub fn jobs_flag() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        }
    }
    1
}

/// Loads the test system for a paper case size (14 exact, others
/// synthetic at IEEE dimensions).
pub fn system_for(size: usize) -> TestSystem {
    synthetic::ieee_case(size)
}

/// Three deterministic single-state attack targets per system size (the
/// paper runs three experiments per case, Fig. 4a).
pub fn target_states(num_buses: usize) -> [usize; 3] {
    [num_buses / 4, num_buses / 2, (3 * num_buses) / 4]
}

/// A satisfiable single-target verification scenario.
pub fn sat_scenario(sys: &TestSystem, target: usize) -> AttackModel {
    AttackModel::new(sys.grid.num_buses()).target(BusId(target), StateTarget::MustChange)
}

/// An unsatisfiable scenario: the same target with a measurement budget
/// too small for any stealthy attack (a single altered measurement can
/// never be stealthy on a redundantly metered line).
pub fn unsat_scenario(sys: &TestSystem, target: usize) -> AttackModel {
    sat_scenario(sys, target).max_altered_measurements(1)
}

/// Times one verification; returns `(seconds, feasible, stats)`.
pub fn time_verification(
    sys: &TestSystem,
    model: &AttackModel,
) -> (f64, bool, SolverStats) {
    let verifier = AttackVerifier::new(sys);
    let start = Instant::now();
    let report = verifier.verify_with_stats(model);
    (start.elapsed().as_secs_f64(), report.outcome.is_feasible(), report.stats)
}

/// Times one synthesis run; returns `(seconds, found, iterations)`.
pub fn time_synthesis(
    sys: &TestSystem,
    attacker: &AttackModel,
    config: &SynthesisConfig,
) -> (f64, bool, usize) {
    let synth = Synthesizer::new(sys);
    let start = Instant::now();
    let outcome = synth.synthesize(attacker, config);
    let secs = start.elapsed().as_secs_f64();
    match outcome {
        sta_core::SynthesisOutcome::Architecture(a) => (secs, true, a.iterations),
        sta_core::SynthesisOutcome::NoSolution { iterations } => (secs, false, iterations),
        sta_core::SynthesisOutcome::Inconclusive { iterations } => (secs, false, iterations),
    }
}

/// A taken-measurement sweep variant of a system.
pub fn with_taken_fraction(sys: &TestSystem, fraction: f64) -> TestSystem {
    let mut out = sys.clone();
    out.measurements = sys.measurements.with_taken_fraction(fraction);
    out
}

/// The standard synthesis attacker for the Fig. 5 sweeps: resource
/// capped at `fraction` of the potential measurements.
pub fn synthesis_attacker(sys: &TestSystem, fraction: f64) -> AttackModel {
    let m = sys.grid.num_potential_measurements();
    AttackModel::new(sys.grid.num_buses())
        .max_altered_measurements(((m as f64) * fraction).round() as usize)
}

// ---------------------------------------------------------------------
// Campaign plumbing shared by the sweep builders
// ---------------------------------------------------------------------

/// Finds (or creates) the row with `label`.
fn row_mut<'a>(rows: &'a mut Vec<Row>, label: &str) -> &'a mut Row {
    if let Some(i) = rows.iter().position(|r| r.label == label) {
        &mut rows[i]
    } else {
        rows.push(Row::new(label));
        rows.last_mut().expect("just pushed")
    }
}

/// Folds per-job wall times into rows; `keys[id]` gives each job's
/// `(row label, column label)` cell address.
fn collect_wall_rows(report: &CampaignReport, keys: &[(String, String)]) -> Vec<Row> {
    let mut rows = Vec::new();
    for r in &report.results {
        let (row, col) = &keys[r.id];
        row_mut(&mut rows, row).cells.push((col.clone(), r.wall.as_secs_f64()));
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 4: verification-model scaling
// ---------------------------------------------------------------------

/// Fig. 4(a): execution time vs bus count, three target choices each.
pub fn fig4a(sizes: &[usize], workers: usize) -> Vec<Row> {
    let mut spec = CampaignSpec::new("fig4a");
    let mut keys: Vec<(String, String)> = Vec::new();
    for &b in sizes {
        let sys = system_for(b);
        let models: Vec<AttackModel> =
            target_states(b).iter().map(|&t| sat_scenario(&sys, t)).collect();
        let case = spec.add_case(format!("{b}-bus"), sys);
        for (k, model) in models.into_iter().enumerate() {
            spec.verify(case, format!("{b}-bus exp{}", k + 1), model);
            keys.push((format!("{b}-bus"), format!("exp{} (s)", k + 1)));
        }
    }
    let report = run(&spec, workers);
    for r in &report.results {
        assert_eq!(r.verdict, Verdict::Sat, "fig4a scenarios are satisfiable");
    }
    let mut rows = collect_wall_rows(&report, &keys);
    for row in &mut rows {
        let total: f64 = row.cells.iter().map(|(_, v)| v).sum();
        let avg = total / row.cells.len() as f64;
        row.cells.push(("avg (s)".into(), avg));
    }
    rows
}

/// Fig. 4(b): execution time vs % of taken measurements (30/57-bus).
pub fn fig4b(sizes: &[usize], fractions: &[f64], workers: usize) -> Vec<Row> {
    let mut spec = CampaignSpec::new("fig4b");
    let mut keys = Vec::new();
    for &f in fractions {
        for &b in sizes {
            let sys = with_taken_fraction(&system_for(b), f);
            let model = sat_scenario(&sys, target_states(b)[1]);
            let case = spec.add_case(format!("{b}-bus@{:.0}%", f * 100.0), sys);
            spec.verify(case, format!("{b}-bus {:.0}%", f * 100.0), model);
            keys.push((format!("{:.0}%", f * 100.0), format!("{b}-bus (s)")));
        }
    }
    collect_wall_rows(&run(&spec, workers), &keys)
}

/// Fig. 4(c): execution time vs attacker resource limit `T_CZ`
/// (14/30-bus).
pub fn fig4c(sizes: &[usize], limits: &[usize], workers: usize) -> Vec<Row> {
    let mut spec = CampaignSpec::new("fig4c");
    let mut keys = Vec::new();
    let cases: Vec<usize> = sizes
        .iter()
        .map(|&b| spec.add_case(format!("{b}-bus"), system_for(b)))
        .collect();
    for &t_cz in limits {
        for (i, &b) in sizes.iter().enumerate() {
            let model = sat_scenario(&spec.cases[cases[i]].system, target_states(b)[1])
                .max_altered_measurements(t_cz);
            spec.verify(cases[i], format!("T_CZ={t_cz} {b}-bus"), model);
            keys.push((format!("T_CZ={t_cz}"), format!("{b}-bus (s)")));
        }
    }
    collect_wall_rows(&run(&spec, workers), &keys)
}

/// Fig. 4(d): satisfiable vs unsatisfiable execution time per system.
pub fn fig4d(sizes: &[usize], workers: usize) -> Vec<Row> {
    let mut spec = CampaignSpec::new("fig4d");
    let mut keys = Vec::new();
    let mut want_sat = Vec::new();
    for &b in sizes {
        let sys = system_for(b);
        let t = target_states(b)[1];
        let (sat_model, unsat_model) = (sat_scenario(&sys, t), unsat_scenario(&sys, t));
        let case = spec.add_case(format!("{b}-bus"), sys);
        spec.verify(case, format!("{b}-bus sat"), sat_model);
        keys.push((format!("{b}-bus"), "sat (s)".to_string()));
        want_sat.push(true);
        spec.verify(case, format!("{b}-bus unsat"), unsat_model);
        keys.push((format!("{b}-bus"), "unsat (s)".to_string()));
        want_sat.push(false);
    }
    let report = run(&spec, workers);
    for r in &report.results {
        assert_eq!(r.verdict == Verdict::Sat, want_sat[r.id], "fig4d polarity");
    }
    collect_wall_rows(&report, &keys)
}

// ---------------------------------------------------------------------
// Figure 5: synthesis-mechanism scaling
// ---------------------------------------------------------------------

/// The synthesis budget used in the scaling sweeps.
pub fn synthesis_budget(num_buses: usize) -> usize {
    (num_buses / 3).max(4)
}

/// Fig. 5(a): synthesis time vs bus count, at 90% and 100% taken
/// measurements.
pub fn fig5a(sizes: &[usize], workers: usize) -> Vec<Row> {
    let mut spec = CampaignSpec::new("fig5a");
    let mut keys = Vec::new();
    for &b in sizes {
        for &f in &[0.9, 1.0] {
            let sys = with_taken_fraction(&system_for(b), f);
            let attacker = synthesis_attacker(&sys, 0.15);
            let config = SynthesisConfig::with_budget(synthesis_budget(b));
            let case = spec.add_case(format!("{b}-bus@{:.0}%", f * 100.0), sys);
            spec.synthesize(case, format!("{b}-bus {:.0}%", f * 100.0), attacker, config);
            keys.push((format!("{b}-bus"), format!("{:.0}% taken (s)", f * 100.0)));
        }
    }
    let report = run(&spec, workers);
    for r in &report.results {
        assert_eq!(
            r.verdict,
            Verdict::Architecture,
            "fig5a budget must admit a solution ({})",
            r.label
        );
    }
    collect_wall_rows(&report, &keys)
}

/// Fig. 5(b): synthesis time vs % taken measurements (30/57-bus).
pub fn fig5b(sizes: &[usize], fractions: &[f64], workers: usize) -> Vec<Row> {
    let mut spec = CampaignSpec::new("fig5b");
    let mut keys = Vec::new();
    for &f in fractions {
        for &b in sizes {
            let sys = with_taken_fraction(&system_for(b), f);
            let attacker = synthesis_attacker(&sys, 0.15);
            let config = SynthesisConfig::with_budget(synthesis_budget(b));
            let case = spec.add_case(format!("{b}-bus@{:.0}%", f * 100.0), sys);
            spec.synthesize(case, format!("{b}-bus {:.0}%", f * 100.0), attacker, config);
            keys.push((format!("{:.0}%", f * 100.0), format!("{b}-bus (s)")));
        }
    }
    collect_wall_rows(&run(&spec, workers), &keys)
}

/// Fig. 5(c): synthesis time vs attacker resource limit (as % of total
/// measurements; 14/30-bus).
pub fn fig5c(sizes: &[usize], fractions: &[f64], workers: usize) -> Vec<Row> {
    let mut spec = CampaignSpec::new("fig5c");
    let mut keys = Vec::new();
    let cases: Vec<usize> = sizes
        .iter()
        .map(|&b| spec.add_case(format!("{b}-bus"), system_for(b)))
        .collect();
    for &f in fractions {
        for (i, &b) in sizes.iter().enumerate() {
            let attacker = synthesis_attacker(&spec.cases[cases[i]].system, f);
            let config = SynthesisConfig::with_budget(synthesis_budget(b));
            spec.synthesize(
                cases[i],
                format!("{:.0}% {b}-bus", f * 100.0),
                attacker,
                config,
            );
            keys.push((format!("{:.0}%", f * 100.0), format!("{b}-bus (s)")));
        }
    }
    collect_wall_rows(&run(&spec, workers), &keys)
}

/// Fig. 5(d): unsatisfiable synthesis time vs operator budget, for two
/// attacker strengths on the 30-bus system. The paper's scenarios have
/// feasibility minima of 10 and 12 buses; ours are discovered at run
/// time — a generous-budget campaign bounds each minimum `b*` from
/// above, parallel budget grids walk downward until the first unsat
/// budget pins `b*` (budgets are monotone), and a final campaign times
/// the unsat regime just below it.
pub fn fig5d(workers: usize) -> Vec<Row> {
    let sys = system_for(30);
    // Two attacker strengths: the stronger one needs more secured buses.
    let attackers = [
        ("weaker", synthesis_attacker(&sys, 0.2)),
        ("stronger", synthesis_attacker(&sys, 0.3)),
    ];
    let generous = SynthesisConfig::with_budget(sys.grid.num_buses() / 2);
    let mut bound_spec = CampaignSpec::new("fig5d-bounds");
    let case = bound_spec.add_case("30-bus", sys.clone());
    for (label, attacker) in &attackers {
        bound_spec.synthesize(case, *label, attacker.clone(), generous.clone());
    }
    let bounds = run(&bound_spec, workers);

    let mut rows = Vec::new();
    for (i, (label, attacker)) in attackers.iter().enumerate() {
        let upper = bounds.results[i]
            .architecture
            .as_ref()
            .expect("half the buses always suffice here")
            .len();
        let mut seen: Vec<(usize, bool)> = Vec::new();
        let mut hi = upper;
        loop {
            let lo = hi.saturating_sub(3).max(1);
            let mut grid = CampaignSpec::new("fig5d-grid");
            let case = grid.add_case("30-bus", sys.clone());
            for budget in lo..hi {
                grid.synthesize(
                    case,
                    format!("{label} budget={budget}"),
                    attacker.clone(),
                    SynthesisConfig::with_budget(budget),
                );
            }
            let report = run(&grid, workers);
            for (budget, r) in (lo..hi).zip(&report.results) {
                seen.push((budget, r.verdict == Verdict::Architecture));
            }
            if seen.iter().any(|&(_, sat)| !sat) || lo == 1 {
                break;
            }
            hi = lo;
        }
        let b_star = seen
            .iter()
            .filter(|&&(_, sat)| sat)
            .map(|&(b, _)| b)
            .min()
            .unwrap_or(upper);

        // Time the unsat regime just below b*.
        let lo = b_star.saturating_sub(2).max(1);
        if lo >= b_star {
            continue;
        }
        let mut timing = CampaignSpec::new("fig5d-unsat");
        let case = timing.add_case("30-bus", sys.clone());
        for budget in (lo..b_star).rev() {
            timing.synthesize(
                case,
                format!("{label} b*={b_star} budget={budget}"),
                attacker.clone(),
                SynthesisConfig::with_budget(budget),
            );
        }
        let report = run(&timing, workers);
        for r in &report.results {
            assert_ne!(r.verdict, Verdict::Architecture, "budgets below b* are unsat");
            rows.push(
                Row::new(r.label.clone())
                    .cell("unsat time (s)", r.wall.as_secs_f64())
                    .cell("iterations", r.iterations.unwrap_or(0) as f64),
            );
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Table IV: memory complexity
// ---------------------------------------------------------------------

/// Table IV: estimated solver memory (MB) for the verification model and
/// the candidate-selection model, per system size.
pub fn table4(sizes: &[usize], workers: usize) -> Vec<Row> {
    let mut spec = CampaignSpec::new("table4");
    for &b in sizes {
        let sys = system_for(b);
        let model = sat_scenario(&sys, target_states(b)[1]);
        let case = spec.add_case(format!("{b}-bus"), sys);
        spec.verify(case, format!("{b}-bus"), model);
    }
    let report = run(&spec, workers);
    report
        .results
        .iter()
        .zip(sizes)
        .map(|(r, &b)| {
            let stats = r.stats.as_ref().expect("verification jobs carry stats");
            let selection_mb = candidate_selection_memory(&spec.cases[r.id].system);
            Row::new(format!("{b}-bus"))
                .cell("verification (MB)", stats.estimated_mb())
                .cell("selection (MB)", selection_mb)
        })
        .collect()
}

/// Builds and checks one candidate-selection model, returning its
/// estimated memory in MB.
///
/// Uses a paper-scale constant budget (`T_SB = 6`, the §IV-E ceiling):
/// the cardinality encoding grows with `b·T_SB`, and the paper's Table IV
/// sizes its selection model at fixed small operator budgets.
fn candidate_selection_memory(sys: &TestSystem) -> f64 {
    use sta_smt::{Formula, Solver};
    let b = sys.grid.num_buses();
    let mut solver = Solver::new();
    let sb: Vec<sta_smt::BoolVar> = (0..b).map(|_| solver.new_bool()).collect();
    solver.assert_formula(&Formula::at_most(
        sb.iter().map(|&v| Formula::var(v)).collect(),
        6,
    ));
    for (i, line) in sys.grid.lines().iter().enumerate() {
        let l = sys.grid.num_lines();
        let taken = sys.measurements.is_taken(sta_grid::MeasurementId(i))
            || sys.measurements.is_taken(sta_grid::MeasurementId(l + i));
        if taken {
            solver.assert_formula(&Formula::or(vec![
                Formula::var(sb[line.from.0]).not(),
                Formula::var(sb[line.to.0]).not(),
            ]));
        }
    }
    let _ = solver.check();
    solver.last_stats().map(|s| s.estimated_mb()).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_print_without_panic() {
        let rows = vec![
            Row::new("a").cell("x", 1.0).cell("y", 2.0),
            Row::new("b").cell("x", 3.0),
        ];
        print_table("smoke", &rows);
    }

    #[test]
    fn sat_and_unsat_scenarios_have_expected_polarity() {
        let sys = system_for(14);
        let t = target_states(14)[1];
        let (_, sat, _) = time_verification(&sys, &sat_scenario(&sys, t));
        let (_, unsat, _) = time_verification(&sys, &unsat_scenario(&sys, t));
        assert!(sat);
        assert!(!unsat);
    }

    #[test]
    fn fig4a_smallest_case_runs() {
        let rows = fig4a(&[14], 2);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cells.len(), 4);
        assert!(rows[0].cells.iter().all(|(_, v)| *v >= 0.0));
    }

    #[test]
    fn fig4d_smallest_case_has_both_polarities() {
        let rows = fig4d(&[14], 2);
        assert_eq!(rows.len(), 1);
        let cols: Vec<&str> =
            rows[0].cells.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(cols, ["sat (s)", "unsat (s)"]);
    }

    #[test]
    fn table4_reports_positive_memory() {
        let rows = table4(&[14], 1);
        assert!(rows[0].cells.iter().all(|(_, v)| *v > 0.0));
    }
}
