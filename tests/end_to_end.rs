//! Workspace-level integration tests: the full pipeline across crates.
//!
//! Grid generation → DC power flow → WLS estimation → SMT attack
//! verification → replay against the estimator → synthesis → re-verify.

use sta::core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta::core::synthesis::{SynthesisConfig, Synthesizer};
use sta::core::validation;
use sta::estimator::{dcflow, BadDataDetector, WlsEstimator};
use sta::grid::{ieee14, synthetic, BusId, TestSystem};

fn default_op(sys: &TestSystem) -> dcflow::OperatingPoint {
    let injections = dcflow::synthetic_injections(sys.grid.num_buses(), 0);
    dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)
        .expect("connected")
}

#[test]
fn pipeline_attack_and_replay_across_sizes() {
    for &b in &[14usize, 30, 57] {
        let sys = synthetic::ieee_case(b);
        let verifier = AttackVerifier::new(&sys);
        let model = AttackModel::new(b).target(BusId(b / 2), StateTarget::MustChange);
        let attack = verifier.verify(&model).expect_feasible();
        let replay = validation::replay_default(&sys, &attack).unwrap();
        assert!(replay.is_stealthy(1e-6), "{b}-bus: {replay}");
        assert!(
            replay.state_shifts[b / 2].abs() > 1e-9,
            "{b}-bus: target did not move"
        );
    }
}

#[test]
fn pipeline_detector_blind_to_verified_attacks() {
    let sys = ieee14::system_unsecured();
    let op = default_op(&sys);
    let estimator = WlsEstimator::for_system(&sys).unwrap();
    let detector = BadDataDetector::new(0.05);
    let verifier = AttackVerifier::new(&sys);

    for target in 1..14 {
        let model =
            AttackModel::new(14).target(BusId(target), StateTarget::MustChange);
        let attack = verifier.verify(&model).expect_feasible();
        let mut z = estimator.measure(&op);
        for alt in &attack.alterations {
            let row = estimator.row_of(alt.measurement).expect("altered ⇒ taken");
            z[row] += alt.delta;
        }
        let estimate = estimator.estimate(&z).unwrap();
        assert!(
            !detector.detect(&estimator, &estimate).is_bad(),
            "target {} should evade detection",
            target + 1
        );
        assert!(
            (estimate.theta[target] - op.theta[target]).abs() > 1e-9,
            "target {} estimate should move",
            target + 1
        );
    }
}

#[test]
fn pipeline_synthesis_blocks_then_replay_fails_to_find_attack() {
    let sys = ieee14::system_unsecured();
    let synth = Synthesizer::new(&sys);
    let attacker = AttackModel::new(14).max_altered_measurements(10);
    let outcome = synth.synthesize(&attacker, &SynthesisConfig::with_budget(5));
    let arch = outcome.architecture().expect("solution");
    // Harden the actual system configuration and re-verify from scratch.
    let mut hardened_sys = sys.clone();
    hardened_sys.measurements = synth.apply(arch);
    let verifier = AttackVerifier::new(&hardened_sys);
    assert!(!verifier
        .verify(&AttackModel::new(14).max_altered_measurements(10))
        .is_feasible());
}

#[test]
fn pipeline_topology_poisoned_attack_replays_on_synthetic_grid() {
    // On a synthetic 30-bus grid (which has non-core lines every tenth
    // line), a topology-armed attacker finds something, and the replay
    // stays stealthy under the poisoned topology.
    let sys = synthetic::ieee_case(30);
    let verifier = AttackVerifier::new(&sys);
    let model = AttackModel::new(30).with_topology_attack();
    let attack = verifier.verify(&model).expect_feasible();
    match validation::replay_default(&sys, &attack) {
        Ok(replay) => assert!(replay.is_stealthy(1e-6), "{replay}"),
        Err(e) => panic!("replay failed: {e}"),
    }
}

#[test]
fn pipeline_coordinated_topology_attack_evades_topology_detector() {
    // The paper's premise: topology error detection exists, so a naive
    // falsification fails — but an attack that coordinates meter
    // injections with the fake statuses (Eqs. 11–13) passes both the
    // bad-data and the topology checks. Drive the full chain.
    use sta::estimator::TopologyDetector;
    use sta::grid::LineId;

    let sys = ieee14::system_unsecured();
    let op = default_op(&sys);
    let verifier = AttackVerifier::new(&sys);
    let mut model = AttackModel::new(14)
        .target(BusId(11), StateTarget::MustChange)
        .secure_measurement(sta::grid::MeasurementId(45))
        .with_topology_attack();
    for j in 0..14 {
        if j != 11 {
            model = model.target(BusId(j), StateTarget::MustNotChange);
        }
    }
    let attack = verifier.verify(&model).expect_feasible();
    assert_eq!(attack.excluded_lines, vec![LineId(12)]);

    // Build the post-attack snapshot the EMS would see.
    let clean_est = WlsEstimator::for_system(&sys).unwrap();
    let mut z = clean_est.measure(&op);
    for alt in &attack.alterations {
        let row = clean_est.row_of(alt.measurement).unwrap();
        z[row] += alt.delta;
    }
    let mapped = sys.topology.with_line_open(LineId(12));
    let detector = TopologyDetector::default();

    // Coordinated: no suspicion.
    let suspicions = detector
        .inspect(&sys.grid, &mapped, &sys.measurements, sys.reference_bus, &z)
        .unwrap();
    assert!(suspicions.is_empty(), "coordinated attack was flagged: {suspicions:?}");

    // Naive variant (statuses falsified, meters untouched): flagged.
    let z_naive = clean_est.measure(&op);
    let naive = detector
        .inspect(&sys.grid, &mapped, &sys.measurements, sys.reference_bus, &z_naive)
        .unwrap();
    assert!(!naive.is_empty(), "naive falsification must be detected");
}

#[test]
fn pipeline_unobservable_system_is_rejected_before_attack_analysis() {
    // Strip measurements below observability: the estimator refuses, and
    // that is the right failure mode (the paper assumes an observable
    // base system).
    let sys = ieee14::system();
    let mut cfg = sys.measurements.clone();
    for m in 0..cfg.len() {
        cfg.set_taken(sta::grid::MeasurementId(m), m < 5);
    }
    let mut crippled = sys.clone();
    crippled.measurements = cfg;
    assert!(WlsEstimator::for_system(&crippled).is_err());
}

#[test]
fn pipeline_secured_bus_measurements_never_altered() {
    let sys = ieee14::system_unsecured();
    let verifier = AttackVerifier::new(&sys);
    for bus in [3usize, 5, 8] {
        let model = AttackModel::new(14)
            .target(BusId(9), StateTarget::MustChange)
            .secure_buses(&[BusId(bus)]);
        if let Some(v) = verifier.verify(&model).vector() {
            for alt in &v.alterations {
                let host =
                    sta::grid::MeasurementConfig::bus_of(&sys.grid, alt.measurement);
                assert_ne!(host, BusId(bus), "altered a secured bus's meter");
            }
        }
    }
}
