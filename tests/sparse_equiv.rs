//! Sparse-vs-dense equivalence properties.
//!
//! The dense pipeline (dense Jacobian, dense gain product, dense
//! Cholesky) is the correctness oracle for the sparse one (CSR Jacobian,
//! sparse gain, AMD-ordered LDLᵀ). These tests pin the two paths together
//! on seeded `synthetic::generate` grids at every IEEE evaluation size
//! that fits in test time: identical estimates to 1e-9, identical
//! observability verdicts, valid AMD permutations, and bit-identical
//! symbolic-reuse refactorization.

use sta::estimator::{dcflow, WlsEstimator};
use sta::grid::synthetic;
use sta::grid::topology::h_matrix_sparse;
use sta::linalg::{amd_order, Cholesky, SparseCholesky, SparseSymbolic, Vector};

const SIZES: [usize; 4] = [14, 30, 57, 118];

/// The reduced sparse gain matrix `HᵀH` of a synthetic system.
fn sparse_gain(sys: &sta::grid::TestSystem) -> sta::linalg::CsrMatrix {
    let h_full = h_matrix_sparse(&sys.grid, &sys.topology);
    let cols: Vec<usize> = (0..sys.grid.num_buses())
        .filter(|&j| j != sys.reference_bus.0)
        .collect();
    let h = h_full.select_cols(&cols);
    h.transpose().mul_mat(&h)
}

#[test]
fn wls_estimates_agree_across_pipelines_at_every_size() {
    for &b in &SIZES {
        let sys = synthetic::ieee_case(b);
        let mut weights = vec![1.0; sys.measurements.num_taken()];
        for (i, w) in weights.iter_mut().enumerate() {
            *w = 1.0 + 0.2 * (i % 5) as f64;
        }
        let sparse = WlsEstimator::new(
            &sys.grid,
            &sys.topology,
            &sys.measurements,
            sys.reference_bus,
            Some(weights.clone()),
        )
        .unwrap();
        let dense = WlsEstimator::new_dense(
            &sys.grid,
            &sys.topology,
            &sys.measurements,
            sys.reference_bus,
            Some(weights),
        )
        .unwrap();
        let injections = dcflow::synthetic_injections(b, b as u64);
        let op = dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)
            .unwrap();
        let mut z = sparse.measure(&op);
        for i in 0..z.len() {
            z[i] += 0.003 * ((i as f64 * 0.9).sin()); // measurement noise
        }
        let rs = sparse.estimate(&z).unwrap();
        let rd = dense.estimate(&z).unwrap();
        for j in 0..b {
            assert!(
                (rs.theta[j] - rd.theta[j]).abs() < 1e-9,
                "case {b} bus {j}: sparse {} vs dense {}",
                rs.theta[j],
                rd.theta[j]
            );
        }
        assert!((rs.weighted_sse - rd.weighted_sse).abs() < 1e-9, "case {b}");
        assert!((rs.residual_norm - rd.residual_norm).abs() < 1e-9, "case {b}");
    }
}

#[test]
fn sparse_factor_solve_matches_dense_cholesky_on_generated_gains() {
    for &b in &SIZES {
        for seed in [1u64, 17, 99] {
            let grid = synthetic::generate(b, b + b / 2, seed).unwrap();
            let sys = sta::grid::TestSystem::fully_metered(format!("gen{b}-{seed}"), grid);
            let gain = sparse_gain(&sys);
            let sparse = SparseCholesky::factor(&gain).unwrap();
            let dense = Cholesky::factor(&gain.to_dense()).unwrap();
            let rhs = Vector::from(
                (0..gain.num_rows())
                    .map(|i| ((i as f64) * 0.61 + seed as f64).cos())
                    .collect::<Vec<_>>(),
            );
            let xs = sparse.solve(&rhs).unwrap();
            let xd = dense.solve(&rhs).unwrap();
            for i in 0..xs.len() {
                assert!(
                    (xs[i] - xd[i]).abs() < 1e-9,
                    "case {b} seed {seed} component {i}: {} vs {}",
                    xs[i],
                    xd[i]
                );
            }
        }
    }
}

#[test]
fn amd_always_returns_a_valid_permutation() {
    for &b in &SIZES {
        for seed in [2u64, 5, 23] {
            let grid = synthetic::generate(b, b + b / 3, seed).unwrap();
            let sys = sta::grid::TestSystem::fully_metered(format!("perm{b}-{seed}"), grid);
            let gain = sparse_gain(&sys);
            let perm = amd_order(&gain).unwrap();
            assert_eq!(perm.len(), gain.num_rows(), "case {b} seed {seed}");
            let mut seen = vec![false; perm.len()];
            for &p in &perm {
                assert!(p < perm.len(), "case {b} seed {seed}: index {p} out of range");
                assert!(!seen[p], "case {b} seed {seed}: duplicate index {p}");
                seen[p] = true;
            }
        }
    }
}

#[test]
fn symbolic_reuse_refactors_identically_at_every_size() {
    for &b in &SIZES {
        let sys = synthetic::ieee_case(b);
        let gain = sparse_gain(&sys);
        let sym = SparseSymbolic::analyze(&gain).unwrap();
        // Re-weighting changes values but not the pattern: the reused
        // symbolic must produce the exact factor a fresh run produces.
        let scale: Vec<f64> = (0..gain.num_rows())
            .map(|i| 1.0 + 0.1 * (i % 4) as f64)
            .collect();
        let reweighted = gain.scale_rows(&scale).scale_cols(&scale);
        let reused = sym.factor(&reweighted).unwrap();
        let fresh = SparseCholesky::factor(&reweighted).unwrap();
        assert_eq!(reused.factor_nnz(), fresh.factor_nnz(), "case {b}");
        let rhs = Vector::from(vec![1.0; gain.num_rows()]);
        let xr = reused.solve(&rhs).unwrap();
        let xf = fresh.solve(&rhs).unwrap();
        for i in 0..xr.len() {
            assert_eq!(xr[i], xf[i], "case {b} component {i} differs");
        }
    }
}

#[test]
fn observability_verdicts_agree_with_dense_rank_oracle_on_generated_grids() {
    use sta::estimator::observability;
    for &b in &[14usize, 30, 57] {
        let sys = synthetic::ieee_case(b);
        // Full measurement set: observable both ways.
        assert!(observability::is_observable(
            &sys.grid,
            &sys.topology,
            &sys.measurements,
            sys.reference_bus
        ));
        // Starved measurement set: keep only a handful of rows.
        let mut starved = sys.measurements.clone();
        for m in 0..starved.len() {
            starved.set_taken(sta::grid::MeasurementId(m), m < 3);
        }
        let sparse_verdict = observability::is_observable(
            &sys.grid,
            &sys.topology,
            &starved,
            sys.reference_bus,
        );
        let h = observability::reduced_jacobian(&sys.grid, &sys.topology, &starved, sys.reference_bus);
        let dense_verdict = observability::rank(&h) == h.num_cols();
        assert_eq!(sparse_verdict, dense_verdict, "case {b}");
        assert!(!sparse_verdict, "3 rows cannot observe {b} buses");
    }
}
