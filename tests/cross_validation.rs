//! Cross-validation of the SMT attack verifier against an independent
//! algebraic oracle.
//!
//! For plain (non-topology) UFDI attacks, feasibility has a clean linear-
//! algebra characterization: a stealthy attack changing state `j` exists
//! iff there is a state perturbation `c` with `c_j ≠ 0` whose induced
//! measurement changes `H·c` vanish on every *protected* row (taken
//! measurements that are secured or inaccessible). That is a null-space
//! membership question, decidable with Gaussian elimination — completely
//! independent of the SMT encoding. The two decision procedures must
//! agree on every scenario.

use sta::core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta::grid::{synthetic, BusId, MeasurementId, TestSystem};
use sta::linalg::Matrix;

/// Algebraic oracle: can state `target` be changed while every protected
/// taken measurement stays exactly unchanged?
///
/// Builds the matrix `B` of protected taken rows (reference column
/// removed) and asks whether `c_target` can be nonzero on `ker B`:
/// equivalently, whether appending the constraint `c_target = 0` strictly
/// shrinks the null space — i.e. `rank([B; e_target]) > rank(B)`.
fn oracle_state_attackable(
    sys: &TestSystem,
    target: usize,
    secured_buses: &[BusId],
) -> bool {
    let h = sta::grid::topology::h_matrix(&sys.grid, &sys.topology);
    let cols: Vec<usize> = (0..sys.grid.num_buses())
        .filter(|&j| j != sys.reference_bus.0)
        .collect();
    let Some(target_col) = cols.iter().position(|&j| j == target) else {
        return false; // the reference state can never change
    };
    let mut protected_rows: Vec<usize> = Vec::new();
    for m in 0..sys.grid.num_potential_measurements() {
        let id = MeasurementId(m);
        if !sys.measurements.is_taken(id) {
            continue;
        }
        let host = sta::grid::MeasurementConfig::bus_of(&sys.grid, id);
        let protected = sys.measurements.is_secured(id)
            || !sys.measurements.is_accessible(id)
            || secured_buses.contains(&host);
        if protected {
            protected_rows.push(m);
        }
    }
    let b_mat = h.select_rows(&protected_rows).select_cols(&cols);
    let rank_b = sta::estimator::observability::rank(&b_mat);
    // Append the unit row e_target.
    let mut extended = Matrix::zeros(b_mat.num_rows() + 1, cols.len());
    for i in 0..b_mat.num_rows() {
        for j in 0..cols.len() {
            extended[(i, j)] = b_mat[(i, j)];
        }
    }
    extended[(b_mat.num_rows(), target_col)] = 1.0;
    let rank_ext = sta::estimator::observability::rank(&extended);
    rank_ext > rank_b
}

fn smt_state_attackable(
    sys: &TestSystem,
    target: usize,
    secured_buses: &[BusId],
) -> bool {
    let verifier = AttackVerifier::new(sys);
    let model = AttackModel::new(sys.grid.num_buses())
        .target(BusId(target), StateTarget::MustChange)
        .secure_buses(secured_buses);
    verifier.verify(&model).is_feasible()
}

#[test]
fn smt_matches_oracle_on_ieee14_all_states() {
    let sys = sta::grid::ieee14::system();
    for target in 0..14 {
        assert_eq!(
            smt_state_attackable(&sys, target, &[]),
            oracle_state_attackable(&sys, target, &[]),
            "state {} (Table III security)",
            target + 1
        );
    }
}

#[test]
fn smt_matches_oracle_on_ieee14_unsecured() {
    let sys = sta::grid::ieee14::system_unsecured();
    for target in 0..14 {
        assert_eq!(
            smt_state_attackable(&sys, target, &[]),
            oracle_state_attackable(&sys, target, &[]),
            "state {} (unsecured)",
            target + 1
        );
    }
}

#[test]
fn smt_matches_oracle_under_random_bus_protection() {
    // Deterministic pseudo-random protected bus sets on the 14-bus and a
    // synthetic 30-bus system.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for sys in [sta::grid::ieee14::system_unsecured(), synthetic::ieee_case(30)] {
        let b = sys.grid.num_buses();
        for _round in 0..6 {
            let n_secured = (next() % 4) as usize + 1;
            let secured: Vec<BusId> =
                (0..n_secured).map(|_| BusId((next() % b as u64) as usize)).collect();
            let target = (next() % b as u64) as usize;
            assert_eq!(
                smt_state_attackable(&sys, target, &secured),
                oracle_state_attackable(&sys, target, &secured),
                "{}: target {} secured {:?}",
                sys.name,
                target + 1,
                secured
            );
        }
    }
}

#[test]
fn smt_attack_vector_satisfies_a_equals_hc() {
    // Every extracted plain attack vector must satisfy a = H·c on the
    // taken rows, with a supported off the protected rows.
    let sys = sta::grid::ieee14::system_unsecured();
    let verifier = AttackVerifier::new(&sys);
    let h = sta::grid::topology::h_matrix(&sys.grid, &sys.topology);
    for target in 1..14 {
        let model = AttackModel::new(14).target(BusId(target), StateTarget::MustChange);
        let attack = verifier.verify(&model).expect_feasible();
        // c = state_changes (full vector, reference included as 0).
        // Check each taken measurement row: delta == (H·c)_row.
        let mut delta = vec![0.0f64; sys.grid.num_potential_measurements()];
        for alt in &attack.alterations {
            delta[alt.measurement.0] = alt.delta;
        }
        for m in 0..sys.grid.num_potential_measurements() {
            if !sys.measurements.is_taken(MeasurementId(m)) {
                continue;
            }
            let mut hc = 0.0;
            for j in 0..14 {
                hc += h[(m, j)] * attack.state_changes[j];
            }
            assert!(
                (hc - delta[m]).abs() < 1e-6,
                "target {}: row {} Hc={hc} delta={}",
                target + 1,
                m + 1,
                delta[m]
            );
        }
    }
}
