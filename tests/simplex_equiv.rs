//! Revised-vs-dense simplex equivalence properties.
//!
//! The dense eager tableau is the correctness oracle for the revised
//! engine on a factorized sparse basis. Both run the same abstract
//! Dutertre–de Moura procedure over exact rationals with Bland's rule,
//! so they must agree on far more than the verdict: the pivot trajectory
//! is identical, hence so are the models (witness vectors), the
//! deterministic counters, and the conflict/certificate stream. These
//! tests pin that equivalence across the paper's IEEE evaluation ladder
//! and exercise the revised engine's new interruption points (factor,
//! FTRAN/BTRAN, eta application) against a warm session core.

use sta::core::attack::{
    AttackModel, AttackOutcome, AttackVerifier, StateTarget, VerifySession,
};
use sta::grid::{ieee14, synthetic, BusId, TestSystem};
use sta::smt::{Budget, CertifyLevel, SimplexMode};

/// The §V-B ladder sizes the equivalence is pinned at. 300 runs only the
/// cheap blocked scenario below (debug-build test time); the full sat
/// checks stop at 118 here and are CI's job via `sta bench --suite scale`.
const SIZES: [usize; 5] = [14, 30, 57, 118, 300];

fn system_for(buses: usize) -> TestSystem {
    if buses == 14 {
        ieee14::system()
    } else {
        synthetic::ieee_case(buses)
    }
}

/// The scenario families each size is checked under.
fn scenarios(buses: usize) -> Vec<(String, AttackModel)> {
    let mut out = vec![(
        format!("blocked-{buses}"),
        AttackModel::new(buses).max_altered_measurements(0),
    )];
    if buses <= 118 {
        out.push((
            format!("open-{buses}"),
            AttackModel::new(buses).target(BusId(buses / 2), StateTarget::MustChange),
        ));
        out.push((
            format!("capped-{buses}"),
            AttackModel::new(buses)
                .target(BusId(buses - 2), StateTarget::MustChange)
                .max_altered_measurements(10)
                .max_compromised_buses(4),
        ));
    }
    out
}

#[test]
fn revised_matches_dense_verdict_model_and_pivots_at_every_size() {
    for &b in &SIZES {
        let sys = system_for(b);
        for (label, model) in scenarios(b) {
            let dense = AttackVerifier::new(&sys)
                .with_simplex(SimplexMode::Dense)
                .verify_with_stats(&model);
            let revised = AttackVerifier::new(&sys)
                .with_simplex(SimplexMode::Revised)
                .verify_with_stats(&model);
            match (&dense.outcome, &revised.outcome) {
                (AttackOutcome::Feasible(wd), AttackOutcome::Feasible(wr)) => {
                    // Model equality is exact: both engines walk the same
                    // rational pivot trajectory, so the witnesses agree
                    // bit for bit, not merely within tolerance.
                    assert_eq!(wd, wr, "{label}: witness vectors differ");
                }
                (AttackOutcome::Infeasible, AttackOutcome::Infeasible) => {}
                (d, r) => panic!("{label}: dense {d:?} vs revised {r:?}"),
            }
            // Identical trajectory ⇒ identical deterministic counters.
            assert_eq!(dense.stats.pivots, revised.stats.pivots, "{label}: pivots");
            assert_eq!(
                dense.stats.bound_asserts, revised.stats.bound_asserts,
                "{label}: bound_asserts"
            );
            assert_eq!(
                dense.stats.theory_checks, revised.stats.theory_checks,
                "{label}: theory_checks"
            );
            assert_eq!(
                dense.stats.conflicts, revised.stats.conflicts,
                "{label}: conflicts"
            );
            assert_eq!(
                dense.stats.decisions, revised.stats.decisions,
                "{label}: decisions"
            );
            // The refactorization counter stays on the observational side:
            // zero for the dense oracle by construction.
            assert_eq!(dense.stats.refactorizations, 0, "{label}");
        }
    }
}

/// Full certification (Farkas certificate replay + model audits) passes
/// identically under both engines: the revised engine reproduces not just
/// verdicts but the exact conflict explanations the checker replays.
#[test]
fn certified_runs_agree_across_engines() {
    for &b in &[14usize, 30, 57] {
        let sys = system_for(b);
        for (label, model) in scenarios(b) {
            for mode in [SimplexMode::Dense, SimplexMode::Revised] {
                let report = AttackVerifier::new(&sys)
                    .with_certify(CertifyLevel::Full)
                    .with_simplex(mode)
                    .verify_with_stats(&model);
                assert!(
                    report.stats.certified,
                    "{label}: {} run not certified",
                    mode.as_str()
                );
                assert_eq!(report.stats.lint_errors, 0, "{label}");
            }
        }
    }
}

/// A zero budget interrupts the revised engine at its kernel poll sites
/// (factorization, FTRAN/BTRAN, eta application all poll the same
/// closure) and the interruption must not poison the warm session core:
/// the next unlimited check on the same core still answers, and answers
/// exactly like the dense oracle.
#[test]
fn zero_budget_interrupts_without_poisoning_the_warm_core() {
    let b = 57;
    let sys = system_for(b);
    let open = AttackModel::new(b).target(BusId(b / 2), StateTarget::MustChange);

    let mut session = VerifySession::with_verifier(
        AttackVerifier::new(&sys).with_simplex(SimplexMode::Revised),
        false,
    );
    // Interrupt the very first check (cold core: the factor path polls),
    // then again on the warmed core (eta/solve paths poll).
    for round in 0..2 {
        let report =
            session.verify_with_budget(&open, &Budget::with_timeout(std::time::Duration::ZERO));
        assert!(
            matches!(report.outcome, AttackOutcome::Unknown(_)),
            "round {round}: expected interruption, got {:?}",
            report.outcome
        );
        let report = session.verify(&open);
        let AttackOutcome::Feasible(w) = &report.outcome else {
            panic!("round {round}: warm core poisoned: {:?}", report.outcome);
        };
        // Same trajectory as a fresh dense run — the interrupted attempt
        // left no partial pivot state behind.
        let dense = AttackVerifier::new(&sys)
            .with_simplex(SimplexMode::Dense)
            .verify_with_stats(&open);
        let AttackOutcome::Feasible(wd) = &dense.outcome else {
            panic!("dense oracle disagrees: {:?}", dense.outcome);
        };
        assert_eq!(w, wd, "round {round}: witness drifted after interruption");
    }
}

/// `Auto` mode must agree with both pinned engines — whichever side of
/// the row-count threshold a case lands on.
#[test]
fn auto_mode_agrees_with_pinned_engines() {
    for &b in &[14usize, 118] {
        let sys = system_for(b);
        let model = AttackModel::new(b).target(BusId(b / 2), StateTarget::MustChange);
        let auto = AttackVerifier::new(&sys)
            .with_simplex(SimplexMode::Auto)
            .verify_with_stats(&model);
        let dense = AttackVerifier::new(&sys)
            .with_simplex(SimplexMode::Dense)
            .verify_with_stats(&model);
        let (AttackOutcome::Feasible(wa), AttackOutcome::Feasible(wd)) =
            (&auto.outcome, &dense.outcome)
        else {
            panic!("case {b}: expected feasible under both modes");
        };
        assert_eq!(wa, wd, "case {b}: auto mode diverged");
        assert_eq!(auto.stats.pivots, dense.stats.pivots, "case {b}");
    }
}
