//! Integration tests of the `sta` command-line tool.

use std::process::Command;

fn sta(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sta"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn no_args_prints_usage() {
    let out = sta(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn case_dumps_builtin() {
    let out = sta(&["case", "ieee14"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("system ieee14"));
    assert!(text.contains("buses 14"));
    assert!(text.contains("line 1 2 16.9"));
    assert!(text.contains("secured 1 2 6 15 25 32 41"));
}

#[test]
fn verify_objective_two_roundtrip_through_files() {
    let dir = std::env::temp_dir().join("sta-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let case_path = dir.join("ieee14u.case");
    let scen_path = dir.join("obj2.scenario");
    // Dump the built-in unsecured case into a file.
    let out = sta(&["case", "ieee14-unsecured"]);
    std::fs::write(&case_path, stdout(&out)).unwrap();
    // The paper's Objective 2.
    let mut scenario = String::from("target 12 change\nunknown-lines 3 7 17\n");
    for j in 1..=14 {
        if j != 12 {
            scenario.push_str(&format!("target {j} keep\n"));
        }
    }
    std::fs::write(&scen_path, &scenario).unwrap();

    let out = sta(&[
        "verify",
        case_path.to_str().unwrap(),
        scen_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.starts_with("sat"), "{text}");
    // The paper's five meters (1-indexed) appear in the vector printout.
    for m in [12, 32, 39, 46, 53] {
        assert!(text.contains(&format!("{m}:")), "meter {m} missing in {text}");
    }

    // Securing measurement 46 flips it to unsat (exit code 1).
    std::fs::write(&scen_path, format!("{scenario}secure-measurement 46\n")).unwrap();
    let out = sta(&[
        "verify",
        case_path.to_str().unwrap(),
        scen_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("unsat"));
}

#[test]
fn replay_reports_stealthy() {
    let dir = std::env::temp_dir().join("sta-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let scen_path = dir.join("replay.scenario");
    std::fs::write(&scen_path, "target 10 change\n").unwrap();
    let out = sta(&["replay", "ieee14-unsecured", scen_path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("stealthy: yes"), "{text}");
}

#[test]
fn synthesize_with_budget() {
    let dir = std::env::temp_dir().join("sta-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let scen_path = dir.join("synth.scenario");
    std::fs::write(&scen_path, "target 12 change\nmax-measurements 8\n").unwrap();
    let out = sta(&[
        "synthesize",
        "ieee14-unsecured",
        scen_path.to_str().unwrap(),
        "--budget",
        "3",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("secure buses"));
    // Budget 0 cannot work.
    let out = sta(&[
        "synthesize",
        "ieee14-unsecured",
        scen_path.to_str().unwrap(),
        "--budget",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn bad_inputs_give_errors() {
    let out = sta(&["verify", "/no/such/file.case", "-"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    let out = sta(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = sta(&["synthesize", "ieee14", "-"]);
    assert_eq!(out.status.code(), Some(2)); // missing --budget
}

/// Satellite: worker-count usage errors are exit code 2, not a panic or a
/// hung pool — `--jobs 0` and a non-numeric `--jobs` both refuse cleanly
/// before any solver work starts.
#[test]
fn campaign_bad_jobs_flag_is_a_usage_error() {
    let out = sta(&["campaign", "ieee14", "--jobs", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
    let out = sta(&["campaign", "ieee14", "--jobs", "abc"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
    let out = sta(&["campaign", "ieee14", "--jobs"]);
    assert_eq!(out.status.code(), Some(2));
}

/// Satellite: `--incremental` takes exactly `on` or `off`; anything else
/// is a usage error (exit 2) on both synthesize and campaign, and the
/// message names the flag.
#[test]
fn bad_incremental_flag_is_a_usage_error() {
    let out = sta(&[
        "synthesize", "ieee14", "-", "--budget", "3", "--incremental", "maybe",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--incremental"));
    let out = sta(&["campaign", "ieee14", "--incremental", "1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--incremental"));
    let out = sta(&["campaign", "ieee14", "--incremental"]);
    assert_eq!(out.status.code(), Some(2));
}

/// Satellite: bad telemetry flags are usage errors (exit 2) rejected
/// client-side — a zero or non-numeric `--interval-ms` never opens a
/// subscription, and an unknown metrics format never reaches the wire.
#[test]
fn bad_telemetry_flags_are_usage_errors() {
    let out = sta(&["client", "/nowhere.sock", "watch", "--interval-ms", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--interval-ms"));
    let out = sta(&["client", "/nowhere.sock", "watch", "--interval-ms", "soon"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--interval-ms"));
    let out = sta(&["client", "/nowhere.sock", "metrics", "--format", "xml"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("json|prometheus"));
    let out = sta(&["top", "/nowhere.sock", "--interval-ms", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--interval-ms"));
    let out = sta(&["top"]);
    assert_eq!(out.status.code(), Some(2));
}

/// Tentpole: the warm (default) and cold (`--incremental off`) synthesis
/// paths agree on the verdict from the command line too.
#[test]
fn synthesize_incremental_modes_agree_on_verdict() {
    let dir = std::env::temp_dir().join("sta-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let scen_path = dir.join("synth-ab.scenario");
    std::fs::write(&scen_path, "target 12 change\nmax-measurements 8\n").unwrap();
    for mode in ["on", "off"] {
        let out = sta(&[
            "synthesize",
            "ieee14-unsecured",
            scen_path.to_str().unwrap(),
            "--budget",
            "3",
            "--incremental",
            mode,
        ]);
        assert!(
            out.status.success(),
            "--incremental {mode}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout(&out).contains("secure buses"), "--incremental {mode}");
    }
}

/// Tentpole: `--trace` writes parseable JSON Lines bracketed by
/// run-start/run-end with non-zero phase counters, and `--metrics` prints
/// the phase table.
#[test]
fn verify_trace_and_metrics_emit_observability() {
    let dir = std::env::temp_dir().join("sta-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("verify.jsonl");
    let out = sta(&[
        "verify",
        "ieee14",
        "-",
        "--metrics",
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("phase"), "{text}");
    assert!(text.contains("decisions"), "{text}");
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let lines: Vec<&str> = trace.lines().collect();
    assert!(lines.len() >= 5, "{trace}");
    assert!(lines.iter().all(|l| l.starts_with("{\"event\":\"") && l.ends_with('}')));
    assert!(lines[0].contains("\"event\":\"run-start\""));
    assert!(lines.last().unwrap().contains("\"event\":\"run-end\""));
    assert!(trace.contains("\"phase\":\"encode\""));
    assert!(trace.contains("\"phase\":\"search\""));
    assert!(trace.contains("\"verdict\":\"sat\""));
}

/// `sta lint` is clean at HEAD (exit 0) and its summary names the scan.
#[test]
fn lint_is_clean_at_head() {
    let out = sta(&["lint"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "sta lint found violations:\n{}{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("lint: clean"), "{}", stdout(&out));
}

/// `sta lint --json` emits schema-tagged JSON, byte-identical across runs.
#[test]
fn lint_json_is_deterministic() {
    let a = sta(&["lint", "--json"]);
    let b = sta(&["lint", "--json"]);
    assert_eq!(a.status.code(), Some(0));
    assert_eq!(a.stdout, b.stdout, "lint --json differs between runs");
    let text = stdout(&a);
    assert!(text.contains("\"schema\":\"sta-lint/v1\""), "{text}");
    assert!(text.contains("\"findings\":["), "{text}");
}

/// Unknown lint flags are usage errors (exit 2), like every other
/// subcommand — `--jobs` belongs to `campaign`, not `lint`.
#[test]
fn lint_rejects_unknown_flags_as_usage_errors() {
    for bad in [&["lint", "--jobs", "4"][..], &["lint", "--root"][..]] {
        let out = sta(bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("error"),
            "{bad:?}"
        );
    }
}
