//! Tier-1 driver for the in-tree invariant analyzer (`sta::analysis`).
//!
//! This used to be a self-contained unwrap/expect scan; the scan now
//! lives in `crates/analysis` as the panic-freedom rule, alongside the
//! determinism, clock-discipline, budget-poll-coverage and
//! JSON-emission rules (DESIGN.md §13). Running it under plain
//! `cargo test` keeps every rule a tier-1 gate: a violation — or a
//! stale allowlist entry, or a lost budget-poll site — fails the build
//! with the same findings `sta lint` prints.

use std::path::Path;

#[test]
fn analyzer_is_clean_at_head() {
    let analysis = sta::analysis::analyze(Path::new(".")).unwrap_or_else(|e| {
        panic!("analyzer failed to run (wrong working directory?): {e}")
    });
    assert!(
        analysis.files_scanned > 50,
        "suspiciously few sources scanned ({})",
        analysis.files_scanned
    );
    assert!(
        analysis.is_clean(),
        "sta lint found {} violation(s) — fix them, or extend the \
         allowlists in crates/analysis/src/config.rs with a justification \
         (`sta lint --fix-allowlist` prints ready-to-paste entries):\n{}",
        analysis.findings.len(),
        analysis.table()
    );
}
