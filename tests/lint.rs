//! Source-level lint: no `.unwrap()` / `.expect(` in non-test library code
//! of `crates/smt`, `crates/core`, `crates/campaign` and `crates/estimator`.
//!
//! These crates sit on the trusted path of the threat analytics — a stray
//! panic in the solver or the attack encoder aborts a whole verification
//! or synthesis run. Production code must either handle the `None`/`Err`
//! case or document the invariant that rules it out and appear in the
//! allowlist below. Test modules (everything from the `#[cfg(test)]` line
//! to end of file — the repo convention keeps tests at the bottom) and
//! `//` comment lines are exempt.
//!
//! The allowlist is exact: every entry must match exactly one current
//! occurrence, so deleting or fixing an allowlisted call fails the test
//! until the entry is removed (no stale entries), and any *new* unwrap or
//! expect fails it immediately.

use std::fs;
use std::path::{Path, PathBuf};

/// Library roots the lint covers, relative to the workspace root.
const ROOTS: &[&str] = &[
    "crates/smt/src",
    "crates/core/src",
    "crates/campaign/src",
    "crates/estimator/src",
];

/// Allowlisted `(file suffix, line substring)` pairs, each justified by a
/// local invariant:
///
/// * `simplex.rs` — `var_for_form` is called after an emptiness check;
///   pivot coefficients exist by the tableau invariant (audited under the
///   `certify-debug` feature); the violated bound in the infeasible-row
///   branch exists by the case split that selected it; the undo trail
///   matches the CDCL push/pop discipline.
/// * `cdcl.rs` — heap/trail pops follow non-emptiness checks; every
///   non-decision literal on the trail has a reason clause (1-UIP
///   invariant); clause activities are finite `f64`s so `partial_cmp`
///   cannot return `None`.
/// * `bigint.rs` — normalized big integers have a nonzero top limb, and
///   the digit buffer always receives at least one digit.
/// * `formula.rs` — `pop` inside `len() == 1` match arms.
/// * `cnf.rs` — constant atoms are folded away by the `Formula`
///   constructors before the encoder can see them.
/// * `validation.rs` / `verifier.rs` — built-in test systems have
///   connected topologies (documented panic).
/// * `scenario.rs` — `split_whitespace` on a line already checked to be
///   non-empty yields a first token.
/// * `analytics.rs` — summaries are only constructed for buses whose
///   minimum was found feasible.
const ALLOWED: &[(&str, &str)] = &[
    ("smt/src/simplex.rs", "expr.iter().next().map(|(v, c)| (v, c.clone())).unwrap()"),
    ("smt/src/simplex.rs", "expect(\"entering in row\")"),
    ("smt/src/simplex.rs", "expect(\"entering coefficient\")"),
    ("smt/src/simplex.rs", "self.lower[xb].as_ref().unwrap().value.clone()"),
    ("smt/src/simplex.rs", "self.upper[xb].as_ref().unwrap().value.clone()"),
    ("smt/src/simplex.rs", "expect(\"backtrack within pushed levels\")"),
    ("smt/src/sat/cdcl.rs", "let last = self.order.pop().unwrap();"),
    ("smt/src/sat/cdcl.rs", "let lit = self.trail.pop().unwrap();"),
    ("smt/src/sat/cdcl.rs", "expect(\"non-decision literal has a reason\")"),
    ("smt/src/sat/cdcl.rs", ".unwrap()"), // partial_cmp over finite activities
    ("smt/src/bigint.rs", "b.last().unwrap().leading_zeros()"),
    ("smt/src/bigint.rs", "digits.pop().unwrap()"),
    ("smt/src/formula.rs", "1 => fs.pop().unwrap(),"),
    ("smt/src/formula.rs", "1 => fs.pop().unwrap(),"),
    ("smt/src/cnf.rs", "expect(\"non-constant atom\")"),
    ("core/src/validation.rs", "expect(\"connected test system\")"),
    ("core/src/scenario.rs", "parts.next().unwrap()"),
    ("core/src/attack/verifier.rs", "expect(\"test systems have connected topologies\")"),
    ("core/src/analytics.rs", "(s.min_measurements.unwrap(), s.min_buses.unwrap_or(0))"),
    ("core/src/analytics.rs", "s.min_measurements.unwrap(),"),
    ("core/src/analytics.rs", "expect(\"minimum feasible\")"),
];

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|e| panic!("read_dir {dir:?}: {e}"));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

#[test]
fn no_unwrap_or_expect_in_library_code() {
    let mut files = Vec::new();
    for root in ROOTS {
        assert!(Path::new(root).is_dir(), "missing lint root {root}");
        rust_files(Path::new(root), &mut files);
    }
    assert!(!files.is_empty(), "no sources found — wrong working directory?");

    let mut violations: Vec<String> = Vec::new();
    let mut allow_hits = vec![0usize; ALLOWED.len()];
    for path in &files {
        let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        let display = path.to_string_lossy().replace('\\', "/");
        for (n, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            // Everything from the test-module marker down is exempt.
            if trimmed.starts_with("#[cfg(test)]") {
                break;
            }
            if trimmed.starts_with("//") {
                continue;
            }
            if !(line.contains(".unwrap()") || line.contains(".expect(")) {
                continue;
            }
            let allowed = ALLOWED.iter().enumerate().find(|(i, (file, sub))| {
                allow_hits[*i] == 0 && display.ends_with(file) && line.contains(sub)
            });
            match allowed {
                Some((i, _)) => allow_hits[i] += 1,
                None => violations.push(format!("{display}:{}: {}", n + 1, line.trim())),
            }
        }
    }

    assert!(
        violations.is_empty(),
        "unwrap()/expect() in non-test library code (handle the error or \
         document the invariant and extend the allowlist in tests/lint.rs):\n{}",
        violations.join("\n")
    );
    let stale: Vec<String> = ALLOWED
        .iter()
        .zip(&allow_hits)
        .filter(|(_, &hits)| hits == 0)
        .map(|((file, sub), _)| format!("{file}: {sub}"))
        .collect();
    assert!(
        stale.is_empty(),
        "stale allowlist entries in tests/lint.rs (the code they covered \
         is gone — remove them):\n{}",
        stale.join("\n")
    );
}
