#!/usr/bin/env bash
# Offline verification gate. Everything here must pass before merging:
#
#   1. tier-1: warning-free release build + full workspace test suite
#   2. source lint (tests/lint.rs): no unwrap/expect in smt/core library code
#   3. sta-smt under --features certify-debug (simplex invariant auditor on)
#   4. end-to-end certification smoke on IEEE 14-bus: one SAT answer with
#      model re-evaluation and one UNSAT answer with RUP proof replay,
#      both under `--certify full`
#   5. campaign smoke: a certified 33-job IEEE 14-bus sweep on 4 workers
#      with one forced-timeout job (must exit 3 = at least one unknown),
#      whose timing-stripped report is byte-identical to a 1-worker run;
#      its --trace JSONL must be well-formed with non-zero phase counters;
#      on machines with >= 4 CPUs the 4-worker run must also be >= 2x
#      faster than the 1-worker run
#   6. incremental equivalence: the same 33-job campaign with
#      --incremental on vs off must produce byte-identical timing-stripped
#      reports — the persistent solver core may only change how fast
#      answers arrive, never the answers
#   6b. engine equivalence: the same campaign pinned to `--simplex dense`
#      and `--simplex revised` must produce byte-identical timing-stripped
#      reports — the revised engine replays the dense pivot trajectory
#      exactly, so only the clock may differ
#   7. bench smoke: `sta bench --reps 1` must emit a schema-valid
#      sta-bench/v1 trajectory point, and the deterministic self-diff
#      (--baseline F --against F) must exit 0 for both the fresh point
#      and the checked-in BENCH_smoke.json
#   8. serve smoke: a persistent `sta serve` daemon on a unix socket
#      answers a cold `sta client verify` with a session cache miss and
#      the identical warm request with a hit, then drains cleanly and
#      removes its socket file
#   9. serve bench: `sta bench --suite serve --reps 5` medians — a warm
#      request (cached session) must beat the cold request that built it
#  10. scale bench: `sta bench --suite scale --reps 1` runs the WLS /
#      observability / verify ladder at 14..2000 buses to completion with
#      a schema-valid report, and three ratios/verdicts are pinned:
#      the 300-bus sparse WLS median must be at least 10x faster than
#      the dense-oracle median (the sparse numerics lift the estimation
#      ceiling); the pivot-heavy 300-bus engine A/B pair must show the
#      revised simplex strictly beating the dense tableau (the factorized
#      basis lifts the solver ceiling); and the 2000-bus verify rung must
#      answer `unsat` — completing within its deadline, not timing out
#  11. telemetry smoke (inside the serve smoke): the metrics registry
#      counts the two verify requests exactly, the Prometheus exposition
#      carries the same totals, and `sta top --once` renders a frame
#  12. telemetry overhead: the serve bench's warm-verify median with the
#      measurement plane on must stay within 1.5x + 500us of the
#      telemetry-off median — observation must stay cheap
#
# No network access is required; the script fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: release build (deny warnings)"
RUSTFLAGS="-D warnings" cargo build --release

echo "==> tier-1: workspace tests"
cargo test -q

echo "==> source lint (invariant analyzer via cargo test)"
cargo test -q --test lint

echo "==> sta lint: zero findings, byte-stable JSON"
./target/release/sta lint --json > LINT_findings.json
./target/release/sta lint --json > LINT_findings.rerun.json
cmp -s LINT_findings.json LINT_findings.rerun.json || {
    echo "sta lint --json output differs between identical runs" >&2
    exit 1
}
rm -f LINT_findings.rerun.json
# Findings-count regression gate: the tree at HEAD must be clean — any
# new finding (or stale allowlist entry) fails the build.
grep -q '"findings":\[\]' LINT_findings.json || {
    echo "sta lint reports findings (see LINT_findings.json)" >&2
    exit 1
}

echo "==> sta lint: injected violation must exit 1"
lintroot="$(mktemp -d)"
for root in crates/analysis/src crates/campaign/src crates/core/src \
            crates/estimator/src crates/grid/src crates/linalg/src \
            crates/serve/src crates/smt/src src; do
    mkdir -p "$lintroot/$root"
    cp -r "$root/." "$lintroot/$root/"
done
printf 'fn injected() { let _ = std::time::Instant::now(); }\n' \
    | cat - "$lintroot/crates/core/src/lib.rs" > "$lintroot/crates/core/src/lib.rs.tmp"
mv "$lintroot/crates/core/src/lib.rs.tmp" "$lintroot/crates/core/src/lib.rs"
status=0
./target/release/sta lint --root "$lintroot" >/dev/null || status=$?
rm -rf "$lintroot"
if [ "$status" -ne 1 ]; then
    echo "expected exit 1 from sta lint on an injected violation, got $status" >&2
    exit 1
fi

echo "==> sta-smt with certify-debug (simplex invariant audits)"
cargo test -q -p sta-smt --features certify-debug

echo "==> certification smoke: SAT with full certification (ieee14)"
./target/release/sta verify ieee14 - --certify full >/dev/null

echo "==> certification smoke: UNSAT with full certification (ieee14)"
scenario="$(mktemp)"
trap 'rm -f "$scenario"' EXIT
cat > "$scenario" <<'EOF'
target 12 change
max-measurements 0
certify full
EOF
# A blocked scenario must exit 1 (unsat); any other status is a failure.
status=0
./target/release/sta verify ieee14 "$scenario" >/dev/null || status=$?
if [ "$status" -ne 1 ]; then
    echo "expected certified unsat (exit 1), got exit $status" >&2
    exit 1
fi

echo "==> campaign smoke: certified 33-job sweep, 4 workers, one forced timeout"
report1="$(mktemp)" report4="$(mktemp)" trace4="$(mktemp)"
trap 'rm -f "$scenario" "$report1" "$report4" "$trace4"' EXIT
status=0
./target/release/sta campaign ieee14 --jobs 4 --certify full --force-timeout \
    --out "$report4" --strip-timing --trace "$trace4" --metrics >/dev/null || status=$?
if [ "$status" -ne 3 ]; then
    echo "expected exit 3 (forced-timeout job is unknown), got exit $status" >&2
    exit 1
fi
grep -q '"verdict":"unknown(timeout)"' "$report4" || {
    echo "campaign report is missing the forced unknown(timeout) verdict" >&2
    exit 1
}

echo "==> trace smoke: --trace JSONL is well-formed with non-zero counters"
bad_lines=$(grep -c -v '^{"event":"' "$trace4" || true)
if [ "$bad_lines" -ne 0 ]; then
    echo "trace file has $bad_lines line(s) not starting with {\"event\":\"" >&2
    exit 1
fi
for pattern in '"event":"run-start"' '"event":"job-start"' '"event":"run-end"' \
               '"phase":"encode"' '"phase":"search"' '"phase":"simplex"'; do
    grep -q -- "$pattern" "$trace4" || {
        echo "trace file is missing $pattern" >&2
        exit 1
    }
done
grep -q '"decisions":[1-9]' "$trace4" || {
    echo "trace file has no job with non-zero decisions" >&2
    exit 1
}
grep -q '"clauses":[1-9]' "$trace4" || {
    echo "trace file has no job with non-zero clauses" >&2
    exit 1
}

echo "==> campaign determinism: 1-worker stripped report must match"
status=0
./target/release/sta campaign ieee14 --jobs 1 --certify full --force-timeout \
    --out "$report1" --strip-timing >/dev/null || status=$?
if [ "$status" -ne 3 ]; then
    echo "expected exit 3 from the 1-worker run, got exit $status" >&2
    exit 1
fi
cmp -s "$report1" "$report4" || {
    echo "timing-stripped campaign reports differ between 1 and 4 workers" >&2
    exit 1
}

echo "==> incremental equivalence: --incremental on/off stripped reports must match"
# The 4-worker stripped report above ran with the default (--incremental
# on); rerun the identical campaign with the persistent core disabled and
# byte-compare. Verdicts, models and certificates must not depend on the
# solve path.
report_cold="$(mktemp)"
trap 'rm -f "$scenario" "$report1" "$report4" "$trace4" "$report_cold"' EXIT
status=0
./target/release/sta campaign ieee14 --jobs 4 --certify full --force-timeout \
    --incremental off --out "$report_cold" --strip-timing >/dev/null || status=$?
if [ "$status" -ne 3 ]; then
    echo "expected exit 3 from the --incremental off run, got exit $status" >&2
    exit 1
fi
cmp -s "$report4" "$report_cold" || {
    echo "timing-stripped campaign reports differ between --incremental on and off" >&2
    exit 1
}

echo "==> engine equivalence: --simplex dense/revised stripped reports must match"
report_dense="$(mktemp)" report_revised="$(mktemp)"
trap 'rm -f "$scenario" "$report1" "$report4" "$trace4" "$report_cold" \
     "$report_dense" "$report_revised"' EXIT
for engine in dense revised; do
    status=0
    ./target/release/sta campaign ieee14 --jobs 4 --certify full --force-timeout \
        --simplex "$engine" --out "$(eval echo "\$report_$engine")" \
        --strip-timing >/dev/null || status=$?
    if [ "$status" -ne 3 ]; then
        echo "expected exit 3 from the --simplex $engine run, got exit $status" >&2
        exit 1
    fi
done
cmp -s "$report_dense" "$report_revised" || {
    echo "timing-stripped campaign reports differ between --simplex dense and revised" >&2
    exit 1
}
cmp -s "$report4" "$report_revised" || {
    echo "pinned-engine stripped report differs from the default (auto) run" >&2
    exit 1
}

if [ "$(nproc)" -ge 4 ]; then
    echo "==> campaign speedup: --jobs 4 must halve the 32-job sweep wall clock"
    t1_start=$(date +%s%N)
    ./target/release/sta campaign ieee14 --jobs 1 >/dev/null
    t1=$((($(date +%s%N) - t1_start) / 1000000))
    t4_start=$(date +%s%N)
    ./target/release/sta campaign ieee14 --jobs 4 >/dev/null
    t4=$((($(date +%s%N) - t4_start) / 1000000))
    echo "    1 worker: ${t1} ms, 4 workers: ${t4} ms"
    if [ $((t4 * 2)) -gt "$t1" ]; then
        echo "expected >= 2x speedup at --jobs 4 (got ${t1} ms -> ${t4} ms)" >&2
        exit 1
    fi
else
    echo "==> campaign speedup check skipped ($(nproc) CPU(s) available)"
fi

echo "==> bench smoke: one-rep trajectory point + deterministic self-diff"
./target/release/sta bench --suite smoke --reps 1 --out BENCH_smoke.ci.json >/dev/null
grep -q '"schema":"sta-bench/v1"' BENCH_smoke.ci.json || {
    echo "bench output is missing the sta-bench/v1 schema tag" >&2
    exit 1
}
# --against skips the run entirely: a file diffed against itself must
# parse (schema validation) and report zero regressions (exit 0).
./target/release/sta bench --baseline BENCH_smoke.ci.json \
    --against BENCH_smoke.ci.json >/dev/null
./target/release/sta bench --baseline BENCH_smoke.json \
    --against BENCH_smoke.json >/dev/null

echo "==> serve smoke: warm session cache over a unix socket"
sockdir="$(mktemp -d)"
serve_pid=""
trap 'rm -f "$scenario" "$report1" "$report4" "$trace4" "$report_cold" \
     "$report_dense" "$report_revised"; \
     [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null; \
     rm -rf "$sockdir"; true' EXIT
sock="$sockdir/sta-serve-ci.sock"
./target/release/sta serve --listen "$sock" --jobs 2 >/dev/null &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.05
done
[ -S "$sock" ] || { echo "serve socket never appeared at $sock" >&2; exit 1; }
cold_out="$(./target/release/sta client "$sock" verify ieee14 -)"
warm_out="$(./target/release/sta client "$sock" verify ieee14 -)"
echo "$cold_out" | grep -q '"session":"miss"' || {
    echo "cold serve request did not report a session cache miss" >&2
    exit 1
}
echo "$warm_out" | grep -q '"session":"hit"' || {
    echo "warm serve request did not report a session cache hit" >&2
    exit 1
}
echo "==> telemetry smoke: exact counters, Prometheus exposition, top frame"
metrics_out="$(./target/release/sta client "$sock" metrics --json)"
echo "$metrics_out" | grep -q '"schema":"sta-metrics/v1"' || {
    echo "metrics reply is missing the sta-metrics/v1 schema tag" >&2
    exit 1
}
echo "$metrics_out" | grep -q '"verify":{"requests":2' || {
    echo "metrics registry did not count exactly 2 verify requests" >&2
    exit 1
}
./target/release/sta client "$sock" metrics --format prometheus \
    | grep -q 'sta_requests_total{op="verify"} 2' || {
    echo "Prometheus exposition disagrees with the verify request count" >&2
    exit 1
}
top_out="$(./target/release/sta top "$sock" --once)"
echo "$top_out" | grep -q 'uptime ' || {
    echo "sta top --once did not render the header gauges" >&2
    exit 1
}
echo "$top_out" | grep -q '^verify ' || {
    echo "sta top --once did not render the per-op table" >&2
    exit 1
}
./target/release/sta client "$sock" shutdown >/dev/null
wait "$serve_pid" || {
    echo "sta serve exited non-zero after a clean shutdown" >&2
    exit 1
}
serve_pid=""
[ -S "$sock" ] && { echo "serve left its socket file behind" >&2; exit 1; }

echo "==> serve bench: warm must beat cold on 5-rep medians"
./target/release/sta bench --suite serve --reps 5 --out BENCH_serve.ci.json >/dev/null
grep -q '"schema":"sta-bench/v1"' BENCH_serve.ci.json || {
    echo "serve bench output is missing the sta-bench/v1 schema tag" >&2
    exit 1
}
./target/release/sta bench --baseline BENCH_serve.ci.json \
    --against BENCH_serve.ci.json >/dev/null
cold_us="$(sed -n 's/.*"label":"cold-verify"[^}]*"wall_us":\([0-9]*\).*/\1/p' BENCH_serve.ci.json)"
warm_us="$(sed -n 's/.*"label":"warm-verify"[^}]*"wall_us":\([0-9]*\).*/\1/p' BENCH_serve.ci.json)"
if [ -z "$cold_us" ] || [ -z "$warm_us" ]; then
    echo "could not extract cold/warm medians from BENCH_serve.ci.json" >&2
    exit 1
fi
echo "    cold median: ${cold_us} us, warm median: ${warm_us} us"
if [ "$warm_us" -ge "$cold_us" ]; then
    echo "warm serve requests must beat cold (got ${cold_us} us -> ${warm_us} us)" >&2
    exit 1
fi

echo "==> telemetry overhead: histograms on vs off on warm medians"
off_us="$(sed -n 's/.*"label":"warm-verify-notelemetry"[^}]*"wall_us":\([0-9]*\).*/\1/p' BENCH_serve.ci.json)"
if [ -z "$off_us" ]; then
    echo "could not extract the warm-verify-notelemetry median from BENCH_serve.ci.json" >&2
    exit 1
fi
echo "    telemetry on: ${warm_us} us, off: ${off_us} us"
if [ "$warm_us" -gt $((off_us * 3 / 2 + 500)) ]; then
    echo "telemetry overhead too high: warm ${warm_us} us vs ${off_us} us off (bound 1.5x + 500us)" >&2
    exit 1
fi

echo "==> scale bench: sparse WLS must beat the dense oracle 10x at 300 buses"
./target/release/sta bench --suite scale --reps 1 --out BENCH_scale.ci.json >/dev/null
grep -q '"schema":"sta-bench/v1"' BENCH_scale.ci.json || {
    echo "scale bench output is missing the sta-bench/v1 schema tag" >&2
    exit 1
}
# Deterministic self-diff: the fresh report must parse and diff cleanly
# against itself (same schema/regression machinery as the smoke suites).
./target/release/sta bench --baseline BENCH_scale.ci.json \
    --against BENCH_scale.ci.json >/dev/null
sparse_us="$(sed -n 's/.*"label":"wls-sparse-300"[^}]*"wall_us":\([0-9]*\).*/\1/p' BENCH_scale.ci.json)"
dense_us="$(sed -n 's/.*"label":"wls-dense-300"[^}]*"wall_us":\([0-9]*\).*/\1/p' BENCH_scale.ci.json)"
if [ -z "$sparse_us" ] || [ -z "$dense_us" ]; then
    echo "could not extract 300-bus WLS medians from BENCH_scale.ci.json" >&2
    exit 1
fi
echo "    300-bus WLS median: sparse ${sparse_us} us, dense ${dense_us} us"
if [ $((sparse_us * 10)) -gt "$dense_us" ]; then
    echo "300-bus sparse WLS must be >= 10x faster than dense (got sparse ${sparse_us} us vs dense ${dense_us} us)" >&2
    exit 1
fi

echo "==> scale bench: revised simplex must beat dense on the 300-bus A/B pair"
vd_us="$(sed -n 's/.*"label":"verify-dense-300"[^}]*"wall_us":\([0-9]*\).*/\1/p' BENCH_scale.ci.json)"
vr_us="$(sed -n 's/.*"label":"verify-revised-300"[^}]*"wall_us":\([0-9]*\).*/\1/p' BENCH_scale.ci.json)"
if [ -z "$vd_us" ] || [ -z "$vr_us" ]; then
    echo "could not extract the 300-bus engine A/B medians from BENCH_scale.ci.json" >&2
    exit 1
fi
echo "    300-bus pivot-heavy verify median: dense ${vd_us} us, revised ${vr_us} us"
if [ "$vr_us" -ge "$vd_us" ]; then
    echo "revised simplex must strictly beat dense at 300 buses (got dense ${vd_us} us vs revised ${vr_us} us)" >&2
    exit 1
fi

echo "==> scale bench: the 2000-bus verify rung must complete within its deadline"
v2000="$(sed -n 's/.*"label":"verify-2000"[^}]*"verdict":"\([^"]*\)".*/\1/p' BENCH_scale.ci.json)"
if [ "$v2000" != "unsat" ]; then
    echo "2000-bus verify rung did not complete (verdict: '${v2000:-missing}')" >&2
    exit 1
fi

echo "verify.sh: all checks passed"
