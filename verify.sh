#!/usr/bin/env bash
# Offline verification gate. Everything here must pass before merging:
#
#   1. tier-1: warning-free release build + full workspace test suite
#   2. source lint (tests/lint.rs): no unwrap/expect in smt/core library code
#   3. sta-smt under --features certify-debug (simplex invariant auditor on)
#   4. end-to-end certification smoke on IEEE 14-bus: one SAT answer with
#      model re-evaluation and one UNSAT answer with RUP proof replay,
#      both under `--certify full`
#
# No network access is required; the script fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: release build (deny warnings)"
RUSTFLAGS="-D warnings" cargo build --release

echo "==> tier-1: workspace tests"
cargo test -q

echo "==> source lint (no unwrap/expect in library code)"
cargo test -q --test lint

echo "==> sta-smt with certify-debug (simplex invariant audits)"
cargo test -q -p sta-smt --features certify-debug

echo "==> certification smoke: SAT with full certification (ieee14)"
./target/release/sta verify ieee14 - --certify full >/dev/null

echo "==> certification smoke: UNSAT with full certification (ieee14)"
scenario="$(mktemp)"
trap 'rm -f "$scenario"' EXIT
cat > "$scenario" <<'EOF'
target 12 change
max-measurements 0
certify full
EOF
# A blocked scenario must exit 1 (unsat); any other status is a failure.
status=0
./target/release/sta verify ieee14 "$scenario" >/dev/null || status=$?
if [ "$status" -ne 1 ]; then
    echo "expected certified unsat (exit 1), got exit $status" >&2
    exit 1
fi

echo "verify.sh: all checks passed"
