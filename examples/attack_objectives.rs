//! The paper's §III-I example case study: Attack Objectives 1 and 2 on
//! the IEEE 14-bus system, reproduced end to end.
//!
//! Run with: `cargo run --release --example attack_objectives`

use sta::core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta::core::validation;
use sta::grid::{ieee14, BusId, MeasurementId};

fn print_outcome(label: &str, outcome: &sta::core::AttackOutcome) {
    match outcome.vector() {
        Some(v) => {
            let mut meters: Vec<usize> =
                v.alterations.iter().map(|a| a.measurement.0 + 1).collect();
            meters.sort_unstable();
            let buses: Vec<usize> =
                v.compromised_buses.iter().map(|b| b.0 + 1).collect();
            println!("{label}: SAT");
            println!("  measurements to alter: {meters:?}");
            println!("  buses to compromise:   {buses:?}");
            if v.uses_topology_attack() {
                let excl: Vec<usize> =
                    v.excluded_lines.iter().map(|l| l.0 + 1).collect();
                println!("  lines to exclude:      {excl:?}");
            }
        }
        None => println!("{label}: UNSAT (no attack vector exists)"),
    }
}

fn main() {
    // The §III-I configuration: Table III's taken set, no secured
    // measurements (see ieee14::system_unsecured docs), admittances of
    // lines 3, 7 and 17 unknown to the attacker.
    let sys = ieee14::system_unsecured();
    let verifier = AttackVerifier::new(&sys);
    let unknown = ieee14::EXAMPLE_UNKNOWN_LINES.map(|l| l - 1);

    println!("== Attack Objective 1: states 9 and 10, different amounts ==");
    let objective1 = AttackModel::new(14)
        .unknown_lines(20, &unknown)
        .target(BusId(8), StateTarget::MustChange)
        .target(BusId(9), StateTarget::MustChange)
        .require_different_change(BusId(8), BusId(9))
        .max_altered_measurements(16)
        .max_compromised_buses(7);
    let outcome = verifier.verify(&objective1);
    print_outcome("objective 1 (≤16 meas, ≤7 buses)", &outcome);
    if let Some(v) = outcome.vector() {
        let replay = validation::replay_default(&sys, v).unwrap();
        println!("  end-to-end replay: {replay}");
    }

    // Tighter budgets flip it to unsat (the paper: 15 and/or 6).
    let tight = AttackModel::new(14)
        .unknown_lines(20, &unknown)
        .target(BusId(8), StateTarget::MustChange)
        .target(BusId(9), StateTarget::MustChange)
        .require_different_change(BusId(8), BusId(9))
        .max_altered_measurements(12);
    print_outcome("objective 1 (≤12 meas)", &verifier.verify(&tight));

    println!();
    println!("== Attack Objective 2: state 12 only ==");
    let mut objective2 = AttackModel::new(14)
        .unknown_lines(20, &unknown)
        .target(BusId(11), StateTarget::MustChange);
    for j in 0..14 {
        if j != 11 {
            objective2 = objective2.target(BusId(j), StateTarget::MustNotChange);
        }
    }
    print_outcome("objective 2 (baseline)", &verifier.verify(&objective2));

    let with_46_secured = objective2.clone().secure_measurement(MeasurementId(45));
    print_outcome(
        "objective 2 + measurement 46 secured",
        &verifier.verify(&with_46_secured),
    );

    let with_topology = with_46_secured.with_topology_attack();
    let outcome = verifier.verify(&with_topology);
    print_outcome(
        "objective 2 + meas 46 secured + topology poisoning",
        &outcome,
    );
    if let Some(v) = outcome.vector() {
        let replay = validation::replay_default(&sys, v).unwrap();
        println!("  end-to-end replay under poisoned topology: {replay}");
    }
}
