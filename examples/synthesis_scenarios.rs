//! The paper's §IV-E case study: synthesizing security architectures for
//! three escalating attacker models on the IEEE 14-bus system.
//!
//! Run with: `cargo run --release --example synthesis_scenarios`

use sta::core::attack::{AttackModel, AttackVerifier};
use sta::core::baselines;
use sta::core::synthesis::{SynthesisConfig, Synthesizer};
use sta::grid::{ieee14, BusId};

fn report(label: &str, outcome: &sta::core::SynthesisOutcome) {
    match outcome.architecture() {
        Some(arch) => println!("{label}: {arch}"),
        None => println!("{label}: no architecture within budget"),
    }
}

fn main() {
    let sys = ieee14::system_unsecured();
    let synth = Synthesizer::new(&sys);
    // All §IV-E architectures in the paper include bus 1, the reference.
    let config = |budget: usize| SynthesisConfig::with_budget(budget).with_reference_secured();

    println!("== Scenario 1: limited attacker ==");
    println!("   (admittances of lines 3, 17 unknown; ≤ 12 measurements)");
    let attacker1 = AttackModel::new(14)
        .unknown_lines(20, &[2, 16])
        .max_altered_measurements(12);
    report("  budget 4", &synth.synthesize(&attacker1, &config(4)));

    println!("== Scenario 2: full knowledge, unlimited resources ==");
    let attacker2 = AttackModel::new(14);
    report("  budget 4", &synth.synthesize(&attacker2, &config(4)));
    report("  budget 5", &synth.synthesize(&attacker2, &config(5)));

    println!("== Scenario 3: scenario 2 + topology poisoning ==");
    println!("   (lines 5 and 13 vulnerable to exclusion/inclusion)");
    let attacker3 = AttackModel::new(14).with_topology_attack();
    report("  budget 4", &synth.synthesize(&attacker3, &config(4)));
    report("  budget 5", &synth.synthesize(&attacker3, &config(5)));

    // Independent re-verification of the scenario-2 architecture.
    if let Some(arch) = synth
        .synthesize(&attacker2, &config(5))
        .architecture()
        .cloned()
    {
        let verifier = AttackVerifier::new(&sys);
        let hardened = attacker2.clone().secure_buses(&arch.secured_buses);
        println!(
            "re-verification: attack against the 5-bus architecture is {}",
            if verifier.verify(&hardened).is_feasible() { "FEASIBLE (bug!)" } else { "infeasible" },
        );
    }

    println!();
    println!("== Baselines for comparison ==");
    let basic = baselines::bobba_protection(&sys).expect("observable");
    let basic_1idx: Vec<usize> = basic.iter().map(|m| m.0 + 1).collect();
    println!(
        "Bobba et al. basic-measurement protection: {} measurements {:?}",
        basic.len(),
        basic_1idx,
    );
    let greedy = baselines::kim_poor_greedy(&sys, &AttackModel::new(14))
        .expect("greedy converges");
    let greedy_buses: Vec<usize> =
        greedy.secured_buses.iter().map(|b| b.0 + 1).collect();
    println!(
        "Kim–Poor-style greedy: {} buses {:?} ({} oracle calls)",
        greedy.secured_buses.len(),
        greedy_buses,
        greedy.oracle_calls,
    );
    // Contrast: greedy has no budget control; synthesis with the same bus
    // count (or fewer) also blocks the attacker.
    let matched = synth.synthesize(
        &AttackModel::new(14),
        &SynthesisConfig::with_budget(greedy.secured_buses.len()),
    );
    if let Some(arch) = matched.architecture() {
        let arch_buses: Vec<usize> =
            arch.secured_buses.iter().map(|b| b.0 + 1).collect();
        println!(
            "synthesis at the same budget: {} buses {:?}",
            arch.secured_buses.len(),
            arch_buses,
        );
    }
    let _ = BusId(0);
}
