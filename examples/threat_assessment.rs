//! Grid-wide threat analytics: rank every state estimate by attack cost,
//! enumerate alternative attack vectors, and load a custom case file.
//!
//! Run with: `cargo run --release --example threat_assessment`

use sta::core::analytics::ThreatAnalyzer;
use sta::core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta::grid::{caseformat, ieee14, BusId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assess the paper's 14-bus system: per-state minimal attacker
    //    effort (measurements and substations), cheapest targets first.
    let sys = ieee14::system_unsecured();
    let assessment = ThreatAnalyzer::new(&sys).assess();
    println!("== threat assessment: IEEE 14-bus (unsecured) ==");
    print!("{assessment}");

    // 2. The same sweep with Table III's protections applied: costs rise.
    let secured = ieee14::system();
    let hardened = ThreatAnalyzer::new(&secured).assess();
    println!();
    println!("== with Table III's secured measurements ==");
    print!("{hardened}");

    // 3. Enumerate distinct attack vectors against the cheapest target.
    let cheapest = assessment.ranked()[0].bus;
    println!();
    println!(
        "== distinct attacks on the cheapest target (bus {}) ==",
        cheapest.0 + 1
    );
    let verifier = AttackVerifier::new(&sys);
    let model = AttackModel::new(14)
        .target(cheapest, StateTarget::MustChange)
        .max_altered_measurements(8);
    for (k, attack) in verifier.enumerate(&model, 3).iter().enumerate() {
        println!("  #{}: {attack}", k + 1);
    }

    // 4. Custom systems come in through the text case format (the
    //    paper's "input file").
    let custom = "
        system four-bus-demo
        buses 4
        reference 1
        line 1 2 10.0
        line 2 3 5.0
        line 3 4 5.0
        line 1 4 8.0 noncore
        secured 1 9
    ";
    let parsed = caseformat::parse(custom)?;
    println!();
    println!(
        "== custom case '{}': {} buses, {} lines ==",
        parsed.name,
        parsed.grid.num_buses(),
        parsed.grid.num_lines()
    );
    let custom_assessment = ThreatAnalyzer::new(&parsed).assess();
    print!("{custom_assessment}");
    let _ = BusId(0);
    Ok(())
}
