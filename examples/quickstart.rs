//! Quickstart: state estimation, a stealthy attack, and its detection
//! evasion, end to end on the IEEE 14-bus system.
//!
//! Run with: `cargo run --release --example quickstart`

use sta::core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta::core::validation;
use sta::estimator::{dcflow, BadDataDetector, WlsEstimator};
use sta::grid::{ieee14, BusId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load the paper's IEEE 14-bus test system (Table II/III data).
    let sys = ieee14::system_unsecured();
    println!(
        "system: {} buses, {} lines, {} of {} potential measurements taken",
        sys.grid.num_buses(),
        sys.grid.num_lines(),
        sys.measurements.num_taken(),
        sys.grid.num_potential_measurements(),
    );

    // 2. Establish an operating point and run WLS state estimation.
    let injections = dcflow::synthetic_injections(14, 0);
    let op = dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)?;
    let estimator = WlsEstimator::for_system(&sys)?;
    let z = estimator.measure(&op);
    let clean = estimator.estimate(&z)?;
    println!(
        "clean estimate: residual = {:.3e} ({} measurements, {} states)",
        clean.residual_norm,
        estimator.num_measurements(),
        estimator.num_states(),
    );

    // 3. Ask the formal model: can the attacker corrupt bus 10's state
    //    with at most 16 altered measurements in at most 7 substations?
    let verifier = AttackVerifier::new(&sys);
    let model = AttackModel::new(14)
        .target(BusId(9), StateTarget::MustChange)
        .max_altered_measurements(16)
        .max_compromised_buses(7);
    let attack = verifier.verify(&model).expect_feasible();
    println!("attack found: {attack}");

    // 4. Replay the attack against the real estimator: the residual must
    //    not move (stealthy), while the state estimate does.
    let replay = validation::replay(&sys, &op, &attack)?;
    println!("replay: {replay}");
    assert!(replay.is_stealthy(1e-6));

    // 5. Confirm the chi-square bad data detector stays silent.
    let detector = BadDataDetector::new(0.05);
    let mut z_attacked = z.clone();
    for alt in &attack.alterations {
        if let Some(row) = estimator.row_of(alt.measurement) {
            z_attacked[row] += alt.delta;
        }
    }
    let attacked = estimator.estimate(&z_attacked)?;
    let verdict = detector.detect(&estimator, &attacked);
    println!(
        "detector verdict on attacked snapshot: {:?} (statistic {:.3e})",
        verdict, attacked.weighted_sse
    );
    assert!(!verdict.is_bad());
    println!("the attack moved bus 10's estimate by {:+.4} rad, undetected", {
        replay.state_shifts[9]
    });
    Ok(())
}
