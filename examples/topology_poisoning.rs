//! Topology poisoning deep dive: how breaker-status falsification
//! strengthens stealthy attacks, and what it takes to stop it.
//!
//! Run with: `cargo run --release --example topology_poisoning`

use sta::core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta::core::validation;
use sta::estimator::{dcflow, BadDataDetector, WlsEstimator};
use sta::grid::{ieee14, BusId, LineId, MeasurementId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = ieee14::system_unsecured();
    let verifier = AttackVerifier::new(&sys);

    // The scenario from the paper's Attack Objective 2: corrupt state 12
    // only, with measurement 46 (bus 6's injection meter) secured. No
    // plain UFDI attack exists...
    let mut base = AttackModel::new(14).target(BusId(11), StateTarget::MustChange);
    for j in 0..14 {
        if j != 11 {
            base = base.target(BusId(j), StateTarget::MustNotChange);
        }
    }
    let base = base.secure_measurement(MeasurementId(45));
    println!(
        "plain UFDI attack on state 12 (meas 46 secured): {}",
        if verifier.verify(&base).is_feasible() { "feasible" } else { "infeasible" }
    );

    // ...but poisoning the topology — reporting line 13 (6–13) as open —
    // revives it.
    let poisoned = base.clone().with_topology_attack();
    let attack = verifier.verify(&poisoned).expect_feasible();
    println!("with topology poisoning: feasible");
    println!("  {attack}");
    assert_eq!(attack.excluded_lines, vec![LineId(12)]);

    // Replay: the EMS maps line 13 out, the meters are adjusted to stay
    // consistent, and the residual does not move.
    let injections = dcflow::synthetic_injections(14, 0);
    let op = dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)?;
    let replay = validation::replay(&sys, &op, &attack)?;
    println!("  replay under poisoned topology: {replay}");
    assert!(replay.is_stealthy(1e-6));

    // Show what the operator would see: estimate under the poisoned
    // topology, chi-square detector silent.
    let mapped = sys.topology.with_line_open(LineId(12));
    let est = WlsEstimator::new(&sys.grid, &mapped, &sys.measurements, sys.reference_bus, None)?;
    let mut z = {
        let clean = WlsEstimator::for_system(&sys)?;
        clean.measure(&op)
    };
    for alt in &attack.alterations {
        if let Some(row) = est.row_of(alt.measurement) {
            z[row] += alt.delta;
        }
    }
    let result = est.estimate(&z)?;
    let verdict = BadDataDetector::new(0.05).detect(&est, &result);
    println!(
        "  operator's view: residual {:.3e}, detector {:?}",
        result.residual_norm, verdict
    );
    assert!(!verdict.is_bad());

    // The EMS's own topology error detector: the coordinated attack
    // passes, while a naive status falsification (meters untouched) is
    // caught.
    let topo_detector = sta::estimator::TopologyDetector::default();
    let suspicions = topo_detector.inspect(
        &sys.grid, &mapped, &sys.measurements, sys.reference_bus, &z,
    )?;
    println!(
        "  topology error detector on the coordinated attack: {}",
        if suspicions.is_empty() { "no suspicion".to_string() } else { format!("{suspicions:?}") }
    );
    let z_naive = {
        let clean = WlsEstimator::for_system(&sys)?;
        clean.measure(&op)
    };
    let naive = topo_detector.inspect(
        &sys.grid, &mapped, &sys.measurements, sys.reference_bus, &z_naive,
    )?;
    println!("  ... and on a naive falsification:");
    for s in &naive {
        println!("      {s}");
    }

    // Physical impact: what the operator now misperceives.
    let impact = sta::core::impact::assess(&sys, &op, &attack);
    println!("  operator misperception after the attack:");
    print!("{impact}");

    // Countermeasure: securing the breaker-status telemetry of line 13
    // (making it non-excludable) closes the channel again.
    let mut hardened_sys = sys.clone();
    hardened_sys.secured_line_status[12] = true;
    let hardened_verifier = AttackVerifier::new(&hardened_sys);
    println!(
        "after securing line 13's status telemetry: {}",
        if hardened_verifier.verify(&poisoned).is_feasible() {
            "still feasible (via another line)"
        } else {
            "infeasible"
        }
    );
    Ok(())
}
