//! `sta` — command-line front end for the threat-analytics toolchain.
//!
//! ```text
//! sta case <name>                      print a built-in case file
//! sta verify <case> <scenario> [--certify L]
//!                                      decide attack feasibility
//! sta replay <case> <scenario> [--certify L]
//!                                      verify, then replay end to end
//! sta assess <case>                    grid-wide threat assessment
//! sta synthesize <case> <scenario> --budget N [--reference-secured]
//!                                      synthesize a security architecture
//! sta synthesize <case> <scenario> --budget N --measurements
//!                                      measurement-granular variant
//! ```
//!
//! `<case>` is a case file (see `sta::grid::caseformat`) or a built-in
//! name: `ieee14`, `ieee14-unsecured`, `ieee30`, `ieee57`, `ieee118`,
//! `ieee300`. `<scenario>` is an attack-scenario file (see
//! `sta::core::scenario`) or `-` for the empty (unconstrained) scenario.
//! `--certify off|models|full` re-checks every solver answer: `models`
//! re-evaluates satisfying assignments against the original formulas,
//! `full` additionally lints the formulas (deny mode) and replays unsat
//! proofs through an independent RUP/Farkas checker.

use sta::core::analytics::ThreatAnalyzer;
use sta::core::attack::{AttackModel, AttackVerifier};
use sta::core::synthesis::{SynthesisConfig, Synthesizer};
use sta::core::{scenario, validation};
use sta::grid::{caseformat, ieee14, synthetic, TestSystem};
use sta::smt::CertifyLevel;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sta case <name>\n  sta verify <case> <scenario> [--certify off|models|full]\n  \
         sta replay <case> <scenario> [--certify off|models|full]\n  sta assess <case>\n  \
         sta synthesize <case> <scenario> --budget N \
         [--reference-secured] [--measurements] [--paper-blocking] [--certify off|models|full]"
    );
    ExitCode::from(2)
}

fn parse_certify(v: &str) -> Result<CertifyLevel, String> {
    match v {
        "off" => Ok(CertifyLevel::Off),
        "models" => Ok(CertifyLevel::CheckModels),
        "full" => Ok(CertifyLevel::Full),
        other => Err(format!("--certify needs off|models|full, got {other:?}")),
    }
}

/// Parses trailing `--certify` (the only flag verify/replay accept).
fn certify_flag(args: &[String]) -> Result<CertifyLevel, String> {
    let mut level = CertifyLevel::Off;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--certify" => {
                let v = it.next().ok_or("--certify needs a value")?;
                level = parse_certify(v)?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(level)
}

fn load_case(spec: &str) -> Result<TestSystem, String> {
    match spec {
        "ieee14" => return Ok(ieee14::system()),
        "ieee14-unsecured" => return Ok(ieee14::system_unsecured()),
        "ieee30" => return Ok(synthetic::ieee_case(30)),
        "ieee57" => return Ok(synthetic::ieee_case(57)),
        "ieee118" => return Ok(synthetic::ieee_case(118)),
        "ieee300" => return Ok(synthetic::ieee_case(300)),
        _ => {}
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| format!("cannot read case file {spec:?}: {e}"))?;
    caseformat::parse(&text).map_err(|e| e.to_string())
}

fn load_scenario(spec: &str, sys: &TestSystem) -> Result<AttackModel, String> {
    if spec == "-" {
        return Ok(AttackModel::new(sys.grid.num_buses()));
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| format!("cannot read scenario file {spec:?}: {e}"))?;
    scenario::parse(&text, sys.grid.num_buses(), sys.grid.num_lines())
        .map_err(|e| e.to_string())
}

fn cmd_case(args: &[String]) -> Result<ExitCode, String> {
    let name = args.first().ok_or("missing case name")?;
    let sys = load_case(name)?;
    print!("{}", caseformat::write(&sys));
    Ok(ExitCode::SUCCESS)
}

fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    let (case, scen) = two(args)?;
    let certify = certify_flag(&args[2..])?;
    let sys = load_case(&case)?;
    let model = load_scenario(&scen, &sys)?;
    let verifier = AttackVerifier::new(&sys).with_certify(certify);
    let report = verifier.verify_with_stats(&model);
    match report.outcome.vector() {
        Some(v) => {
            println!("sat");
            println!("{v}");
            println!("solver: {}", report.stats);
            Ok(ExitCode::SUCCESS)
        }
        None => {
            println!("unsat — no attack satisfies the scenario");
            println!("solver: {}", report.stats);
            Ok(ExitCode::from(1))
        }
    }
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let (case, scen) = two(args)?;
    let certify = certify_flag(&args[2..])?;
    let sys = load_case(&case)?;
    let model = load_scenario(&scen, &sys)?;
    let verifier = AttackVerifier::new(&sys).with_certify(certify);
    match verifier.verify(&model).vector() {
        Some(v) => {
            println!("attack: {v}");
            let result = validation::replay_default(&sys, v)
                .map_err(|e| e.to_string())?;
            println!("replay: {result}");
            println!(
                "stealthy: {}",
                if result.is_stealthy(1e-6) { "yes" } else { "NO (model bug?)" }
            );
            Ok(ExitCode::SUCCESS)
        }
        None => {
            println!("unsat — nothing to replay");
            Ok(ExitCode::from(1))
        }
    }
}

fn cmd_assess(args: &[String]) -> Result<ExitCode, String> {
    let case = args.first().ok_or("missing case")?;
    let sys = load_case(case)?;
    let assessment = ThreatAnalyzer::new(&sys).assess();
    print!("{assessment}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_synthesize(args: &[String]) -> Result<ExitCode, String> {
    let (case, scen) = two(args)?;
    let sys = load_case(&case)?;
    let model = load_scenario(&scen, &sys)?;
    let mut budget: Option<usize> = None;
    let mut reference_secured = false;
    let mut measurements = false;
    let mut paper_blocking = false;
    let mut certify = CertifyLevel::Off;
    let mut it = args[2..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                budget = Some(v.parse().map_err(|_| "bad --budget value")?);
            }
            "--reference-secured" => reference_secured = true,
            "--measurements" => measurements = true,
            "--paper-blocking" => paper_blocking = true,
            "--certify" => {
                let v = it.next().ok_or("--certify needs a value")?;
                certify = parse_certify(v)?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let budget = budget.ok_or("missing --budget")?;
    let synth = Synthesizer::new(&sys).with_certify(certify);
    if measurements {
        match synth.synthesize_measurements(&model, budget) {
            Some((set, iters)) => {
                let ids: Vec<String> =
                    set.iter().map(|m| (m.0 + 1).to_string()).collect();
                println!(
                    "secure measurements {{{}}} ({iters} iterations)",
                    ids.join(", ")
                );
                Ok(ExitCode::SUCCESS)
            }
            None => {
                println!("no measurement set within budget {budget} blocks the scenario");
                Ok(ExitCode::from(1))
            }
        }
    } else {
        let mut config = SynthesisConfig::with_budget(budget);
        if reference_secured {
            config = config.with_reference_secured();
        }
        if paper_blocking {
            config = config.paper_blocking();
        }
        match synth.synthesize(&model, &config) {
            sta::core::SynthesisOutcome::Architecture(arch) => {
                println!("{arch}");
                Ok(ExitCode::SUCCESS)
            }
            sta::core::SynthesisOutcome::NoSolution { iterations } => {
                println!(
                    "no architecture within budget {budget} ({iterations} iterations)"
                );
                Ok(ExitCode::from(1))
            }
            sta::core::SynthesisOutcome::Inconclusive { iterations } => {
                println!("inconclusive after {iterations} iterations");
                Ok(ExitCode::from(1))
            }
        }
    }
}

fn two(args: &[String]) -> Result<(String, String), String> {
    match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => Ok((a.clone(), b.clone())),
        _ => Err("expected <case> <scenario>".into()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "case" => cmd_case(rest),
        "verify" => cmd_verify(rest),
        "replay" => cmd_replay(rest),
        "assess" => cmd_assess(rest),
        "synthesize" => cmd_synthesize(rest),
        "--help" | "-h" | "help" => return usage(),
        other => {
            eprintln!("unknown command {other:?}");
            return usage();
        }
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
