//! `sta` — command-line front end for the threat-analytics toolchain.
//!
//! ```text
//! sta case <name>                      print a built-in case file
//! sta verify <case> <scenario> [--certify L] [--timeout-ms MS]
//!            [--trace FILE] [--metrics]   decide attack feasibility
//! sta replay <case> <scenario> [--certify L] [--timeout-ms MS]
//!                                      verify, then replay end to end
//! sta assess <case>                    grid-wide threat assessment
//! sta synthesize <case> <scenario> --budget N [--reference-secured]
//!            [--incremental on|off] [--trace FILE] [--metrics]
//!                                      synthesize a security architecture
//! sta synthesize <case> <scenario> --budget N --measurements
//!                                      measurement-granular variant
//! sta campaign [<case>] [--jobs N] [--timeout-ms MS] [--certify L]
//!              [--topology] [--force-timeout] [--out FILE] [--strip-timing]
//!              [--incremental on|off] [--trace FILE] [--metrics] [--profile]
//!                                      parallel sweep of attack variants
//! sta bench [--suite S] [--reps N] [--jobs N] [--out FILE]
//!           [--baseline FILE] [--against FILE] [--threshold PCT]
//!                                      perf-trajectory harness
//! sta lint [--json] [--fix-allowlist] [--root DIR]
//!                                      in-tree invariant analyzer
//! sta top <addr> [--interval-ms MS] [--once]
//!                                      live service dashboard
//! ```
//!
//! Against a running `sta serve`, `sta client stats` and `sta client
//! metrics` render human tables by default (`--json` keeps the raw JSONL
//! reply; `--format prometheus` prints the text exposition), `sta client
//! watch` streams raw snapshot lines at `--interval-ms` cadence until
//! the server drains, and `sta top` turns the same watch stream into a
//! redrawing terminal dashboard. See `DESIGN.md` §16.
//!
//! `--trace FILE` streams the run's observability events (run/job
//! brackets plus per-phase solver counters) as JSON Lines to `FILE`;
//! `--metrics` prints the end-of-run phase table (deterministic counters
//! only — wall clocks stay in the trace); `--profile` prints the
//! hierarchical span tree (encode base/delta, search, simplex self-time,
//! certify; CEGIS iterate/select) with inclusive and self milliseconds.
//! See `DESIGN.md` §10–§11.
//!
//! `sta bench` runs a pinned suite `--reps` times and writes per-job
//! median wall/phase times as schema-versioned JSON (default
//! `BENCH_<suite>.json`). With `--baseline OLD.json` the fresh run is
//! compared against the file and the command exits 1 past the
//! `--threshold` regression gate (default 50%). With `--against
//! NEW.json` no suite runs: the two files are diffed directly (the
//! self-diff `--baseline F --against F` exits 0 and validates schema).
//!
//! `sta lint` runs the in-tree invariant analyzer (`sta::analysis`,
//! DESIGN.md §13) over the workspace: determinism, clock-discipline,
//! budget-poll-coverage, panic-freedom and JSON-emission rules with
//! exact-match allowlists. Exit 0 = clean, 1 = findings, 2 = usage;
//! `--json` emits the byte-stable machine-readable report.
//!
//! `<case>` is a case file (see `sta::grid::caseformat`) or a built-in
//! name: `ieee14`, `ieee14-unsecured`, `ieee30`, `ieee57`, `ieee118`,
//! `ieee300`. `<scenario>` is an attack-scenario file (see
//! `sta::core::scenario`) or `-` for the empty (unconstrained) scenario.
//! `--certify off|models|full` re-checks every solver answer: `models`
//! re-evaluates satisfying assignments against the original formulas,
//! `full` additionally lints the formulas (deny mode) and replays unsat
//! proofs through an independent RUP/Farkas checker.
//!
//! `--incremental on|off` (default `on`) chooses between the persistent
//! incremental solver cores in the CEGIS synthesis loop — learned clauses
//! and the warm simplex basis survive across rounds — and the
//! clone-per-check baseline. Verdicts are mode-invariant; the flag exists
//! for A/B perf comparison (see `sta bench --suite cegis` and DESIGN.md
//! §12). One-shot `verify` jobs are clone-per-check in both modes.
//!
//! # Exit codes
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success (`verify`/`replay`: attack found; `synthesize`: architecture found; `campaign`: every job concluded) |
//! | 1 | conclusive negative: `unsat` (no attack) / no architecture within budget |
//! | 2 | usage or input error |
//! | 3 | undecided: the solver's wall-clock budget ran out (`unknown`), or at least one campaign job did — **not** the same as unsat |

use sta::campaign::pool::{run_with as run_campaign, RunOptions};
use sta::campaign::{bench, CampaignSpec};
use sta::core::analytics::ThreatAnalyzer;
use sta::core::attack::{AttackModel, AttackOutcome, AttackVerifier, StateTarget};
use sta::core::synthesis::{SynthesisConfig, Synthesizer};
use sta::core::{scenario, validation};
use sta::grid::{caseformat, ieee14, synthetic, TestSystem};
use sta::smt::{
    render_spans, CertifyLevel, JsonlSink, Phase, PhaseMetrics, PhaseTimings, Profiler,
    SharedSink, SimplexMode, TraceEvent, TraceSink,
};
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;
use std::time::Duration;

/// Opens the `--trace` JSONL sink over a buffered file writer.
fn open_trace(path: &str) -> Result<JsonlSink<BufWriter<File>>, String> {
    let file = File::create(path)
        .map_err(|e| format!("cannot create trace file {path:?}: {e}"))?;
    Ok(JsonlSink::new(BufWriter::new(file)))
}

/// The trace-event sequence of a one-shot run (one verify or synthesize
/// invocation): run/job brackets around the per-phase counter records.
/// The trace is observational, so the scheduling-dependent cache counters
/// ride on the encode phase here, mirroring the campaign engine.
fn one_shot_events(
    name: &str,
    label: &str,
    case: &str,
    verdict: &str,
    metrics: &PhaseMetrics,
    timings: &PhaseTimings,
) -> Vec<TraceEvent> {
    let mut events = vec![
        TraceEvent::RunStart { name: name.to_string(), jobs: 1 },
        TraceEvent::JobStart { job: 0, label: label.to_string(), case: case.to_string() },
    ];
    for (phase, mut counters) in metrics.grouped() {
        if phase == Phase::Encode {
            counters.push(("cache_hits", timings.cache_hits));
            counters.push(("cache_misses", timings.cache_misses));
        }
        if phase == Phase::Search {
            counters.push(("refactorizations", timings.refactorizations));
        }
        let wall_us = timings.wall_of(phase).map(|d| d.as_micros() as u64);
        events.push(TraceEvent::Phase { job: 0, phase, counters, wall_us });
    }
    let wall: Duration = timings.encode + timings.search;
    let wall_us = wall.as_micros() as u64;
    events.push(TraceEvent::JobEnd { job: 0, verdict: verdict.to_string(), wall_us });
    events.push(TraceEvent::RunEnd { name: name.to_string(), wall_us });
    events
}

/// Writes a one-shot trace file and/or prints the phase table, per flags.
fn observe_one_shot(
    trace: Option<&str>,
    metrics_flag: bool,
    name: &str,
    label: &str,
    case: &str,
    verdict: &str,
    metrics: &PhaseMetrics,
    timings: &PhaseTimings,
) -> Result<(), String> {
    if let Some(path) = trace {
        let mut sink = open_trace(path)?;
        for ev in one_shot_events(name, label, case, verdict, metrics, timings) {
            sink.emit(&ev);
        }
    }
    if metrics_flag {
        print!("{}", metrics.table());
        // Observational counters ride below the deterministic table: the
        // base-cache and refactorization counts depend on engine mode and
        // scheduling, so they never join the phase metrics themselves.
        println!(
            "observational: cache {} hits / {} misses, refactorizations {}",
            timings.cache_hits, timings.cache_misses, timings.refactorizations
        );
    }
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sta case <name>\n  sta verify <case> <scenario> [--certify off|models|full] \
         [--simplex auto|dense|revised] [--timeout-ms MS] \
         [--trace FILE] [--metrics]\n  \
         sta replay <case> <scenario> [--certify off|models|full] [--simplex auto|dense|revised] \
         [--timeout-ms MS]\n  sta assess <case>\n  \
         sta synthesize <case> <scenario> --budget N \
         [--reference-secured] [--measurements] [--paper-blocking] [--certify off|models|full] \
         [--incremental on|off] [--simplex auto|dense|revised] [--trace FILE] [--metrics]\n  \
         sta campaign [<case>] [--jobs N] [--timeout-ms MS] [--certify off|models|full] \
         [--topology] [--force-timeout] [--out FILE] [--strip-timing] [--incremental on|off] \
         [--simplex auto|dense|revised] [--trace FILE] [--metrics] [--profile]\n  \
         sta bench [--suite smoke|sweep|cegis|serve|scale] [--reps N] [--jobs N] [--out FILE] \
         [--baseline FILE] [--against FILE] [--threshold PCT]\n  \
         sta serve --listen <path|host:port> [--jobs N] [--max-sessions K] \
         [--queue N] [--drain-ms MS]\n  \
         sta client <addr> ping|shutdown [--drain-ms MS]\n  \
         sta client <addr> stats [--json]\n  \
         sta client <addr> metrics [--json] [--format json|prometheus]\n  \
         sta client <addr> watch [--interval-ms MS]\n  \
         sta client <addr> verify|synthesize <case> <scenario> [--certify off|models|full] \
         [--timeout-ms MS] [--budget N] [--incremental on|off] [--no-timing] [--trace]\n  \
         sta client <addr> campaign <case> [--workers N] [--timeout-ms MS] [--no-timing] [--trace]\n  \
         sta client <addr> raw '<json-line>'\n  \
         sta top <addr> [--interval-ms MS] [--once]\n  \
         sta lint [--json] [--fix-allowlist] [--root DIR]\n\
         exit codes: 0 = sat/success, 1 = unsat/no solution/perf regression/lint findings, 2 = usage error, 3 = unknown (budget exhausted)"
    );
    ExitCode::from(2)
}

fn parse_incremental(v: &str) -> Result<bool, String> {
    match v {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!("--incremental needs on|off, got {other:?}")),
    }
}

fn parse_simplex(v: &str) -> Result<SimplexMode, String> {
    SimplexMode::parse(v)
        .ok_or_else(|| format!("--simplex needs auto|dense|revised, got {v:?}"))
}

fn parse_certify(v: &str) -> Result<CertifyLevel, String> {
    match v {
        "off" => Ok(CertifyLevel::Off),
        "models" => Ok(CertifyLevel::CheckModels),
        "full" => Ok(CertifyLevel::Full),
        other => Err(format!("--certify needs off|models|full, got {other:?}")),
    }
}

/// Trailing flags of `verify` (and, minus observability, `replay`).
struct VerifyFlags {
    certify: CertifyLevel,
    simplex: SimplexMode,
    timeout_ms: Option<u64>,
    trace: Option<String>,
    metrics: bool,
    profile: bool,
}

/// Parses the trailing flags verify/replay accept: `--certify`,
/// `--simplex` (engine A/B switch; verdicts never depend on it),
/// `--timeout-ms` (a CLI-level deadline overriding the scenario file's
/// own `timeout-ms`), and — when `observability` is allowed — `--trace`,
/// `--metrics`, and `--profile`.
fn verify_flags(args: &[String], observability: bool) -> Result<VerifyFlags, String> {
    let mut flags = VerifyFlags {
        certify: CertifyLevel::Off,
        simplex: SimplexMode::Auto,
        timeout_ms: None,
        trace: None,
        metrics: false,
        profile: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--certify" => {
                let v = it.next().ok_or("--certify needs a value")?;
                flags.certify = parse_certify(v)?;
            }
            "--simplex" => {
                let v = it.next().ok_or("--simplex needs a value")?;
                flags.simplex = parse_simplex(v)?;
            }
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                flags.timeout_ms =
                    Some(v.parse().map_err(|_| "bad --timeout-ms value")?);
            }
            "--trace" if observability => {
                flags.trace =
                    Some(it.next().ok_or("--trace needs a file")?.clone());
            }
            "--metrics" if observability => flags.metrics = true,
            "--profile" if observability => flags.profile = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(flags)
}

fn load_case(spec: &str) -> Result<TestSystem, String> {
    match spec {
        "ieee14" => return Ok(ieee14::system()),
        "ieee14-unsecured" => return Ok(ieee14::system_unsecured()),
        "ieee30" => return Ok(synthetic::ieee_case(30)),
        "ieee57" => return Ok(synthetic::ieee_case(57)),
        "ieee118" => return Ok(synthetic::ieee_case(118)),
        "ieee300" => return Ok(synthetic::ieee_case(300)),
        "ieee1354" => return Ok(synthetic::ieee_case(1354)),
        "ieee2000" => return Ok(synthetic::ieee_case(2000)),
        _ => {}
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| format!("cannot read case file {spec:?}: {e}"))?;
    caseformat::parse(&text).map_err(|e| e.to_string())
}

fn load_scenario(spec: &str, sys: &TestSystem) -> Result<AttackModel, String> {
    if spec == "-" {
        return Ok(AttackModel::new(sys.grid.num_buses()));
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| format!("cannot read scenario file {spec:?}: {e}"))?;
    scenario::parse(&text, sys.grid.num_buses(), sys.grid.num_lines())
        .map_err(|e| e.to_string())
}

fn cmd_case(args: &[String]) -> Result<ExitCode, String> {
    let name = args.first().ok_or("missing case name")?;
    let sys = load_case(name)?;
    print!("{}", caseformat::write(&sys));
    Ok(ExitCode::SUCCESS)
}

fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    let (case, scen) = two(args)?;
    let flags = verify_flags(&args[2..], true)?;
    let sys = load_case(&case)?;
    let mut model = load_scenario(&scen, &sys)?;
    if flags.timeout_ms.is_some() {
        model.timeout_ms = flags.timeout_ms;
    }
    let mut verifier = AttackVerifier::new(&sys)
        .with_certify(flags.certify)
        .with_simplex(flags.simplex);
    let profiler = flags.profile.then(Profiler::new);
    if let Some(p) = &profiler {
        verifier = verifier.with_profiler(p.clone());
    }
    let report = verifier.verify_with_stats(&model);
    let verdict = match &report.outcome {
        AttackOutcome::Feasible(_) => "sat".to_string(),
        AttackOutcome::Infeasible => "unsat".to_string(),
        AttackOutcome::Unknown(why) => format!("unknown({why})"),
    };
    observe_one_shot(
        flags.trace.as_deref(),
        flags.metrics,
        &format!("verify:{case}"),
        &scen,
        &case,
        &verdict,
        &report.stats.phase_metrics(),
        &report.stats.phase_timings(),
    )?;
    if let Some(p) = &profiler {
        print!("{}", render_spans(&p.take()));
    }
    match &report.outcome {
        AttackOutcome::Feasible(v) => {
            println!("sat");
            println!("{v}");
            println!("solver: {}", report.stats);
            Ok(ExitCode::SUCCESS)
        }
        AttackOutcome::Infeasible => {
            println!("unsat — no attack satisfies the scenario");
            println!("solver: {}", report.stats);
            Ok(ExitCode::from(1))
        }
        AttackOutcome::Unknown(why) => {
            println!("unknown ({why}) — budget exhausted before a verdict; NOT unsat");
            println!("solver: {}", report.stats);
            Ok(ExitCode::from(3))
        }
    }
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let (case, scen) = two(args)?;
    let flags = verify_flags(&args[2..], false)?;
    let sys = load_case(&case)?;
    let mut model = load_scenario(&scen, &sys)?;
    if flags.timeout_ms.is_some() {
        model.timeout_ms = flags.timeout_ms;
    }
    let verifier = AttackVerifier::new(&sys)
        .with_certify(flags.certify)
        .with_simplex(flags.simplex);
    match verifier.verify(&model) {
        AttackOutcome::Feasible(v) => {
            println!("attack: {v}");
            let result = validation::replay_default(&sys, &v)
                .map_err(|e| e.to_string())?;
            println!("replay: {result}");
            println!(
                "stealthy: {}",
                if result.is_stealthy(1e-6) { "yes" } else { "NO (model bug?)" }
            );
            Ok(ExitCode::SUCCESS)
        }
        AttackOutcome::Infeasible => {
            println!("unsat — nothing to replay");
            Ok(ExitCode::from(1))
        }
        AttackOutcome::Unknown(why) => {
            println!("unknown ({why}) — budget exhausted; nothing to replay, but NOT unsat");
            Ok(ExitCode::from(3))
        }
    }
}

fn cmd_assess(args: &[String]) -> Result<ExitCode, String> {
    let case = args.first().ok_or("missing case")?;
    let sys = load_case(case)?;
    let assessment = ThreatAnalyzer::new(&sys).assess();
    print!("{assessment}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_synthesize(args: &[String]) -> Result<ExitCode, String> {
    let (case, scen) = two(args)?;
    let sys = load_case(&case)?;
    let model = load_scenario(&scen, &sys)?;
    let mut budget: Option<usize> = None;
    let mut reference_secured = false;
    let mut measurements = false;
    let mut paper_blocking = false;
    let mut certify = CertifyLevel::Off;
    let mut simplex = SimplexMode::Auto;
    let mut incremental = true;
    let mut trace: Option<String> = None;
    let mut metrics = false;
    let mut profile = false;
    let mut it = args[2..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                budget = Some(v.parse().map_err(|_| "bad --budget value")?);
            }
            "--reference-secured" => reference_secured = true,
            "--measurements" => measurements = true,
            "--paper-blocking" => paper_blocking = true,
            "--incremental" => {
                let v = it.next().ok_or("--incremental needs a value")?;
                incremental = parse_incremental(v)?;
            }
            "--certify" => {
                let v = it.next().ok_or("--certify needs a value")?;
                certify = parse_certify(v)?;
            }
            "--simplex" => {
                let v = it.next().ok_or("--simplex needs a value")?;
                simplex = parse_simplex(v)?;
            }
            "--trace" => {
                trace = Some(it.next().ok_or("--trace needs a file")?.clone());
            }
            "--metrics" => metrics = true,
            "--profile" => profile = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let budget = budget.ok_or("missing --budget")?;
    if measurements && (trace.is_some() || metrics || profile) {
        return Err(
            "--trace/--metrics/--profile are not supported with --measurements".into(),
        );
    }
    let mut synth = Synthesizer::new(&sys).with_certify(certify).with_simplex(simplex);
    let profiler = profile.then(Profiler::new);
    if let Some(p) = &profiler {
        synth = synth.with_profiler(p.clone());
    }
    if measurements {
        match synth.synthesize_measurements(&model, budget) {
            Some((set, iters)) => {
                let ids: Vec<String> =
                    set.iter().map(|m| (m.0 + 1).to_string()).collect();
                println!(
                    "secure measurements {{{}}} ({iters} iterations)",
                    ids.join(", ")
                );
                Ok(ExitCode::SUCCESS)
            }
            None => {
                println!("no measurement set within budget {budget} blocks the scenario");
                Ok(ExitCode::from(1))
            }
        }
    } else {
        let mut config = SynthesisConfig::with_budget(budget).with_incremental(incremental);
        if reference_secured {
            config = config.with_reference_secured();
        }
        if paper_blocking {
            config = config.paper_blocking();
        }
        let (outcome, obs) = synth.synthesize_with_metrics(&model, &config);
        let verdict = match &outcome {
            sta::core::SynthesisOutcome::Architecture(_) => "architecture",
            sta::core::SynthesisOutcome::NoSolution { .. } => "no-solution",
            sta::core::SynthesisOutcome::Inconclusive { .. } => "inconclusive",
        };
        observe_one_shot(
            trace.as_deref(),
            metrics,
            &format!("synthesize:{case}"),
            &scen,
            &case,
            verdict,
            &obs.metrics,
            &obs.timings,
        )?;
        if let Some(p) = &profiler {
            print!("{}", render_spans(&p.take()));
        }
        match outcome {
            sta::core::SynthesisOutcome::Architecture(arch) => {
                println!("{arch}");
                Ok(ExitCode::SUCCESS)
            }
            sta::core::SynthesisOutcome::NoSolution { iterations } => {
                println!(
                    "no architecture within budget {budget} ({iterations} iterations)"
                );
                Ok(ExitCode::from(1))
            }
            sta::core::SynthesisOutcome::Inconclusive { iterations } => {
                println!("inconclusive after {iterations} iterations");
                Ok(ExitCode::from(1))
            }
        }
    }
}

fn cmd_campaign(args: &[String]) -> Result<ExitCode, String> {
    let mut case_name = "ieee14".to_string();
    let mut jobs: usize = 4;
    let mut timeout_ms: Option<u64> = None;
    let mut certify = CertifyLevel::Off;
    let mut topology = false;
    let mut force_timeout = false;
    let mut out_file: Option<String> = None;
    let mut strip_timing = false;
    let mut incremental = true;
    let mut simplex = SimplexMode::Auto;
    let mut trace: Option<String> = None;
    let mut metrics = false;
    let mut profile = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--incremental" => {
                let v = it.next().ok_or("--incremental needs a value")?;
                incremental = parse_incremental(v)?;
            }
            "--simplex" => {
                let v = it.next().ok_or("--simplex needs a value")?;
                simplex = parse_simplex(v)?;
            }
            "--trace" => {
                trace = Some(it.next().ok_or("--trace needs a file")?.clone());
            }
            "--metrics" => metrics = true,
            "--profile" => profile = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = v.parse().map_err(|_| "bad --jobs value")?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                timeout_ms =
                    Some(v.parse().map_err(|_| "bad --timeout-ms value")?);
            }
            "--certify" => {
                let v = it.next().ok_or("--certify needs a value")?;
                certify = parse_certify(v)?;
            }
            "--topology" => topology = true,
            "--force-timeout" => force_timeout = true,
            "--out" => {
                out_file = Some(it.next().ok_or("--out needs a file")?.clone());
            }
            "--strip-timing" => strip_timing = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?}"));
            }
            name => case_name = name.to_string(),
        }
    }
    let sys = load_case(&case_name)?;
    let num_buses = sys.grid.num_buses();
    let mut spec = CampaignSpec::standard_sweep(&case_name, sys);
    if topology {
        // Extend the sweep with topology-poisoning variants of each target.
        for t in [num_buses / 4, num_buses / 2, (3 * num_buses) / 4, num_buses - 1] {
            spec.verify(
                0,
                format!("state={} topology", t + 1),
                AttackModel::new(num_buses)
                    .target(sta::grid::BusId(t), StateTarget::MustChange)
                    .with_topology_attack(),
            );
        }
    }
    if force_timeout {
        // An unconstrained scenario with an already-expired deadline:
        // exercises cancellation without slowing the sweep down.
        let doomed = spec.verify(0, "forced-timeout", AttackModel::new(num_buses));
        spec.set_job_timeout_ms(doomed, 0);
    }
    if let Some(ms) = timeout_ms {
        spec = spec.with_timeout_ms(ms);
    }
    spec = spec.with_certify(certify).with_incremental(incremental).with_simplex(simplex);
    let sink = match &trace {
        Some(path) => Some(SharedSink::new(Box::new(open_trace(path)?))),
        None => None,
    };
    let options = RunOptions {
        workers: jobs,
        profile,
        progress: profile,
        ..RunOptions::default()
    };
    let report = run_campaign(&spec, &options, sink.as_ref());
    drop(sink); // flush the trace file before reporting
    print!("{}", report.table());
    if metrics {
        print!("{}", report.metrics_rollup().table());
        let tw = report.timings_rollup();
        println!(
            "observational: cache {} hits / {} misses, refactorizations {}",
            tw.cache_hits, tw.cache_misses, tw.refactorizations
        );
    }
    if profile {
        print!("{}", render_spans(&report.merged_spans()));
    }
    if let Some(path) = out_file {
        let json = report.to_json(!strip_timing);
        std::fs::write(&path, json)
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("report written to {path}");
    }
    if report.any_unknown() {
        println!("at least one job ran out of budget (unknown) — NOT unsat");
        Ok(ExitCode::from(3))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_bench(args: &[String]) -> Result<ExitCode, String> {
    let mut suite_name = "smoke".to_string();
    let mut reps: usize = 3;
    let mut jobs: usize = 1;
    let mut out_file: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut against: Option<String> = None;
    let mut threshold_pct: f64 = 50.0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--suite" => {
                suite_name = it.next().ok_or("--suite needs a value")?.clone();
            }
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                reps = v.parse().map_err(|_| "bad --reps value")?;
                if reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = v.parse().map_err(|_| "bad --jobs value")?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--out" => {
                out_file = Some(it.next().ok_or("--out needs a file")?.clone());
            }
            "--baseline" => {
                baseline = Some(it.next().ok_or("--baseline needs a file")?.clone());
            }
            "--against" => {
                against = Some(it.next().ok_or("--against needs a file")?.clone());
            }
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold_pct = v.parse().map_err(|_| "bad --threshold value")?;
                if !threshold_pct.is_finite() || threshold_pct < 0.0 {
                    return Err("bad --threshold value".into());
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let read_result = |path: &str| -> Result<bench::BenchResult, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read bench file {path:?}: {e}"))?;
        bench::parse_result(&text).map_err(|e| format!("{path}: {e}"))
    };
    let candidate = match &against {
        Some(path) => {
            // Pure file-vs-file comparison: no suite runs, nothing is
            // written. `--baseline F --against F` is the deterministic
            // self-diff used by CI to validate schema and diff path.
            if baseline.is_none() {
                return Err("--against requires --baseline".into());
            }
            read_result(path)?
        }
        None => {
            // The serve suite boots its own in-process server per rep,
            // and the scale suite times estimator calls outside the
            // pool, so both live outside the campaign-spec registry.
            let result = if suite_name == "serve" {
                sta::serve::bench::run_serve_suite(reps, jobs)?
            } else if suite_name == "scale" {
                bench::run_scale_suite(reps, jobs)?
            } else {
                let spec = bench::suite(&suite_name).ok_or_else(|| {
                    format!(
                        "unknown suite {suite_name:?} (expected one of: {}, serve, scale)",
                        bench::suite_names().join(", ")
                    )
                })?;
                bench::run_suite(&suite_name, &spec, reps, jobs)
            };
            let path = out_file
                .unwrap_or_else(|| format!("BENCH_{suite_name}.json"));
            std::fs::write(&path, result.to_json())
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            println!("bench written to {path} ({} jobs, {reps} reps)", result.jobs.len());
            result
        }
    };
    if let Some(path) = baseline {
        let base = read_result(&path)?;
        let d = bench::diff(&base, &candidate, threshold_pct);
        print!("{}", d.table());
        if d.regressed() {
            println!("perf regression vs {path} (threshold {threshold_pct}%)");
            return Ok(ExitCode::from(1));
        }
        println!("no regression vs {path} (threshold {threshold_pct}%)");
    }
    Ok(ExitCode::SUCCESS)
}

/// Finds the workspace root by walking upward from the current directory
/// until a `Cargo.toml` next to a `crates/analysis` directory appears.
fn find_workspace_root() -> Result<std::path::PathBuf, String> {
    let mut dir = std::env::current_dir()
        .map_err(|e| format!("cannot read current directory: {e}"))?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates/analysis").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("not inside the sta workspace (pass --root DIR)".into());
        }
    }
}

/// `sta lint [--json] [--fix-allowlist] [--root DIR]` — run the in-tree
/// invariant analyzer (see `sta::analysis` and DESIGN.md §13).
/// Exit 0 = clean, 1 = findings, 2 = usage error.
fn cmd_lint(args: &[String]) -> Result<ExitCode, String> {
    let mut json = false;
    let mut fix = false;
    let mut root: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-allowlist" => fix = true,
            "--root" => {
                root = Some(it.next().ok_or("--root needs a directory")?.clone());
            }
            other => return Err(format!("unknown lint flag {other:?}")),
        }
    }
    let root = match root {
        Some(r) => std::path::PathBuf::from(r),
        None => find_workspace_root()?,
    };
    let analysis = sta::analysis::analyze(&root)?;
    if json {
        print!("{}", analysis.to_json());
    } else if analysis.is_clean() {
        println!("lint: clean ({} files scanned)", analysis.files_scanned);
    } else {
        print!("{}", analysis.table());
        println!(
            "lint: {} finding(s) across {} files",
            analysis.findings.len(),
            analysis.files_scanned
        );
    }
    if fix && !analysis.is_clean() {
        print!("{}", analysis.fix_suggestions());
    }
    Ok(if analysis.is_clean() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

/// `sta serve --listen <addr>` — run the persistent threat-analytics
/// service until a client sends `shutdown` (see DESIGN.md §14). Blocks
/// the calling terminal; pair with `sta client` from another shell.
fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut listen: Option<String> = None;
    let mut config_jobs: usize = 4;
    let mut max_sessions: usize = 8;
    let mut queue: usize = 32;
    let mut drain_ms: u64 = 2000;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => {
                listen = Some(it.next().ok_or("--listen needs an address")?.clone());
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                config_jobs = v.parse().map_err(|_| "bad --jobs value")?;
                if config_jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--max-sessions" => {
                let v = it.next().ok_or("--max-sessions needs a value")?;
                max_sessions = v.parse().map_err(|_| "bad --max-sessions value")?;
                if max_sessions == 0 {
                    return Err("--max-sessions must be at least 1".into());
                }
            }
            "--queue" => {
                let v = it.next().ok_or("--queue needs a value")?;
                queue = v.parse().map_err(|_| "bad --queue value")?;
                if queue == 0 {
                    return Err("--queue must be at least 1".into());
                }
            }
            "--drain-ms" => {
                let v = it.next().ok_or("--drain-ms needs a value")?;
                drain_ms = v.parse().map_err(|_| "bad --drain-ms value")?;
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    let listen = listen.ok_or("serve needs --listen <path|host:port>")?;
    let mut config = sta::serve::ServeConfig::new(listen);
    config.jobs = config_jobs;
    config.max_sessions = max_sessions;
    config.queue = queue;
    config.drain_ms = drain_ms;
    let server = sta::serve::Server::bind(config)?;
    println!("listening on {}", server.local_addr());
    server.run()?;
    Ok(ExitCode::SUCCESS)
}

/// Builds the JSONL request line of a `sta client` query operation.
fn client_query_line(op: &str, args: &[String]) -> Result<String, String> {
    use sta::smt::json::escape_into;
    use std::fmt::Write as _;
    let case = args.first().ok_or_else(|| format!("client {op} needs <case>"))?;
    let (scenario_spec, rest) = if op == "campaign" {
        (None, &args[1..])
    } else {
        let scen = args.get(1).ok_or_else(|| format!("client {op} needs <scenario>"))?;
        (Some(scen.clone()), &args[2..])
    };
    let mut line = String::from("{\"id\":\"cli\",\"op\":");
    escape_into(op, &mut line);
    line.push_str(",\"case\":");
    escape_into(case, &mut line);
    if let Some(spec) = scenario_spec {
        if spec != "-" {
            let text = std::fs::read_to_string(&spec)
                .map_err(|e| format!("cannot read scenario file {spec:?}: {e}"))?;
            line.push_str(",\"scenario\":");
            escape_into(&text, &mut line);
        }
    }
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--certify" => {
                let level = parse_certify(it.next().ok_or("--certify needs a value")?)?;
                let token = match level {
                    CertifyLevel::Off => "off",
                    CertifyLevel::CheckModels => "models",
                    CertifyLevel::Full => "full",
                };
                let _ = write!(line, ",\"certify\":\"{token}\"");
            }
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| "bad --timeout-ms value")?;
                let _ = write!(line, ",\"timeout_ms\":{ms}");
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                let n: u64 = v.parse().map_err(|_| "bad --budget value")?;
                let _ = write!(line, ",\"budget\":{n}");
            }
            "--incremental" => {
                let on = parse_incremental(it.next().ok_or("--incremental needs a value")?)?;
                let _ = write!(line, ",\"incremental\":{on}");
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n: u64 = v.parse().map_err(|_| "bad --workers value")?;
                let _ = write!(line, ",\"workers\":{n}");
            }
            "--no-timing" => line.push_str(",\"timing\":false"),
            "--trace" => line.push_str(",\"trace\":true"),
            other => return Err(format!("unknown client flag {other:?}")),
        }
    }
    line.push('}');
    Ok(line)
}

/// `sta client <addr> <op> ...` — send one request to a running
/// `sta serve` instance, print every reply line, and exit with the same
/// 0/1/2/3 verdict contract as the one-shot commands.
fn cmd_client(args: &[String]) -> Result<ExitCode, String> {
    let addr = args.first().ok_or("client needs <addr>")?;
    let op = args.get(1).ok_or("client needs an operation")?;
    let rest = &args[2..];
    let line = match op.as_str() {
        "ping" => {
            if !rest.is_empty() {
                return Err(format!("client {op} takes no further arguments"));
            }
            format!("{{\"id\":\"cli\",\"op\":\"{op}\"}}")
        }
        "stats" => {
            let mut raw = false;
            for flag in rest {
                match flag.as_str() {
                    "--json" => raw = true,
                    other => return Err(format!("unknown client flag {other:?}")),
                }
            }
            let lines =
                sta::serve::client::request(addr, "{\"id\":\"cli\",\"op\":\"stats\"}")?;
            let last = lines.last().ok_or("empty reply")?;
            let code = sta::serve::client::exit_code(last);
            if raw || code != 0 {
                for l in &lines {
                    println!("{l}");
                }
            } else {
                let doc = sta::smt::json::parse(last)
                    .map_err(|e| format!("unparsable stats reply: {e}"))?;
                print!("{}", sta::serve::top::render_stats(&doc));
            }
            return Ok(ExitCode::from(code));
        }
        "metrics" => {
            let mut raw = false;
            let mut format = "json".to_string();
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--json" => raw = true,
                    "--format" => {
                        format = it.next().ok_or("--format needs a value")?.clone();
                    }
                    other => return Err(format!("unknown client flag {other:?}")),
                }
            }
            if format != "json" && format != "prometheus" {
                return Err(format!("--format needs json|prometheus, got {format:?}"));
            }
            let line =
                format!("{{\"id\":\"cli\",\"op\":\"metrics\",\"format\":\"{format}\"}}");
            let lines = sta::serve::client::request(addr, &line)?;
            let last = lines.last().ok_or("empty reply")?;
            let code = sta::serve::client::exit_code(last);
            if raw || code != 0 {
                for l in &lines {
                    println!("{l}");
                }
            } else {
                let doc = sta::smt::json::parse(last)
                    .map_err(|e| format!("unparsable metrics reply: {e}"))?;
                if format == "prometheus" {
                    // Unwrap the exposition text from its JSONL envelope.
                    let body = doc
                        .get("body")
                        .and_then(sta::smt::json::Json::as_str)
                        .ok_or("metrics reply has no body")?;
                    print!("{body}");
                } else {
                    let metrics =
                        doc.get("metrics").ok_or("metrics reply has no metrics object")?;
                    print!("{}", sta::serve::top::render_frame(metrics));
                }
            }
            return Ok(ExitCode::from(code));
        }
        "watch" => {
            let mut interval_ms: u64 = 1000;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--interval-ms" => {
                        let v = it.next().ok_or("--interval-ms needs a value")?;
                        interval_ms =
                            v.parse().map_err(|_| "bad --interval-ms value")?;
                        if interval_ms == 0 {
                            return Err("--interval-ms must be a positive integer".into());
                        }
                    }
                    other => return Err(format!("unknown client flag {other:?}")),
                }
            }
            let line = format!(
                "{{\"id\":\"cli\",\"op\":\"watch\",\"interval_ms\":{interval_ms}}}"
            );
            let final_line = sta::serve::client::stream(addr, &line, |l| {
                println!("{l}");
                true
            })?;
            return Ok(match final_line {
                Some(l) => {
                    println!("{l}");
                    ExitCode::from(sta::serve::client::exit_code(&l))
                }
                None => ExitCode::SUCCESS,
            });
        }
        "shutdown" => {
            let mut line = String::from("{\"id\":\"cli\",\"op\":\"shutdown\"");
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--drain-ms" => {
                        use std::fmt::Write as _;
                        let v = it.next().ok_or("--drain-ms needs a value")?;
                        let ms: u64 = v.parse().map_err(|_| "bad --drain-ms value")?;
                        let _ = write!(line, ",\"drain_ms\":{ms}");
                    }
                    other => return Err(format!("unknown client flag {other:?}")),
                }
            }
            line.push('}');
            line
        }
        "raw" => rest.first().ok_or("client raw needs a JSON line")?.clone(),
        "verify" | "synthesize" | "campaign" => client_query_line(op, rest)?,
        other => return Err(format!("unknown client operation {other:?}")),
    };
    let lines = sta::serve::client::request(addr, &line)?;
    for l in &lines {
        println!("{l}");
    }
    let code = lines.last().map(|l| sta::serve::client::exit_code(l)).unwrap_or(2);
    Ok(ExitCode::from(code))
}

/// `sta top <addr> [--interval-ms MS] [--once]` — live terminal
/// dashboard over a `watch` subscription: each snapshot clears the
/// screen and redraws queue depth, worker occupancy, cache temperature
/// and per-op latency percentiles. `--once` fetches a single `metrics`
/// snapshot and prints one frame without clearing — the scripting mode.
/// Runs until the server drains (final frame stays up) or ^C.
fn cmd_top(args: &[String]) -> Result<ExitCode, String> {
    use sta::serve::{client, top};
    use sta::smt::json::parse;
    let addr = args.first().ok_or("top needs <addr>")?;
    let mut interval_ms: u64 = 1000;
    let mut once = false;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--interval-ms" => {
                let v = it.next().ok_or("--interval-ms needs a value")?;
                interval_ms = v.parse().map_err(|_| "bad --interval-ms value")?;
                if interval_ms == 0 {
                    return Err("--interval-ms must be a positive integer".into());
                }
            }
            "--once" => once = true,
            other => return Err(format!("unknown top flag {other:?}")),
        }
    }
    if once {
        let lines =
            client::request(addr, "{\"id\":\"top\",\"op\":\"metrics\",\"format\":\"json\"}")?;
        let last = lines.last().ok_or("empty reply")?;
        let code = client::exit_code(last);
        if code != 0 {
            for l in &lines {
                println!("{l}");
            }
            return Ok(ExitCode::from(code));
        }
        let doc =
            parse(last).map_err(|e| format!("unparsable metrics reply: {e}"))?;
        let metrics = doc.get("metrics").ok_or("metrics reply has no metrics object")?;
        print!("{}", top::render_frame(metrics));
        return Ok(ExitCode::SUCCESS);
    }
    let line =
        format!("{{\"id\":\"top\",\"op\":\"watch\",\"interval_ms\":{interval_ms}}}");
    let final_line = client::stream(addr, &line, |l| {
        if let Ok(doc) = parse(l) {
            if let Some(metrics) = doc.get("metrics") {
                print!("{}{}", top::CLEAR, top::render_frame(metrics));
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
        }
        true
    })?;
    if let Some(l) = final_line {
        let code = client::exit_code(&l);
        if code == 0 {
            if let Ok(doc) = parse(&l) {
                if let Some(snap) = doc.get("final_snapshot") {
                    print!("{}{}", top::CLEAR, top::render_frame(snap));
                }
            }
            println!("server draining — watch closed");
        } else {
            println!("{l}");
        }
        return Ok(ExitCode::from(code));
    }
    Ok(ExitCode::SUCCESS)
}

fn two(args: &[String]) -> Result<(String, String), String> {
    match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => Ok((a.clone(), b.clone())),
        _ => Err("expected <case> <scenario>".into()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "case" => cmd_case(rest),
        "verify" => cmd_verify(rest),
        "replay" => cmd_replay(rest),
        "assess" => cmd_assess(rest),
        "synthesize" => cmd_synthesize(rest),
        "campaign" => cmd_campaign(rest),
        "bench" => cmd_bench(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "top" => cmd_top(rest),
        "lint" => cmd_lint(rest),
        "--help" | "-h" | "help" => return usage(),
        other => {
            eprintln!("unknown command {other:?}");
            return usage();
        }
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
