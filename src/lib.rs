//! # sta — Security Threat Analytics for Power System State Estimation
//!
//! A from-scratch Rust reproduction of *"Security Threat Analytics and
//! Countermeasure Synthesis for Power System State Estimation"* (Rahman,
//! Al-Shaer, Kavasseri — DSN 2014): a formal framework that encodes
//! undetected false-data-injection (UFDI) attacks against DC state
//! estimation — including topology poisoning — as SMT constraint problems,
//! and synthesizes budget-constrained security architectures that resist
//! them.
//!
//! This umbrella crate re-exports the whole stack:
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | [`smt`] | `sta-smt` | CDCL(T) SMT solver for QF_LRA, exact rationals, cardinality |
//! | [`linalg`] | `sta-linalg` | Dense matrices, LU, Cholesky |
//! | [`grid`] | `sta-grid` | Grid model, topology processor, measurements, IEEE cases |
//! | [`estimator`] | `sta-estimator` | DC power flow, WLS estimation, bad-data detection |
//! | [`core`] | `sta-core` | UFDI attack verification, synthesis, baselines, validation |
//! | [`campaign`] | `sta-campaign` | Parallel campaign engine: sweeps, deadlines, deterministic reports |
//! | [`serve`] | `sta-serve` | Persistent JSONL service: warm session cache, admission control, drain |
//! | [`analysis`] | `sta-analysis` | In-tree invariant analyzer backing `sta lint` and `tests/lint.rs` |
//!
//! # Quickstart
//!
//! ```
//! use sta::core::attack::{AttackModel, AttackVerifier, StateTarget};
//! use sta::grid::{ieee14, BusId};
//!
//! // Can an attacker corrupt the estimate of bus 12's angle without
//! // touching any other state, and stay invisible to bad-data detection?
//! let sys = ieee14::system_unsecured();
//! let verifier = AttackVerifier::new(&sys);
//! let mut model = AttackModel::new(14).target(BusId(11), StateTarget::MustChange);
//! for j in 0..14 {
//!     if j != 11 {
//!         model = model.target(BusId(j), StateTarget::MustNotChange);
//!     }
//! }
//! let attack = verifier.verify(&model).expect_feasible();
//! assert_eq!(attack.num_alterations(), 5); // the paper's five meters
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the harness regenerating every figure and table of
//! the paper's evaluation.

pub use sta_analysis as analysis;
pub use sta_campaign as campaign;
pub use sta_core as core;
pub use sta_estimator as estimator;
pub use sta_grid as grid;
pub use sta_linalg as linalg;
pub use sta_serve as serve;
pub use sta_smt as smt;
